"""Unit tests for the exact-diagonalization validation substrate."""

import numpy as np
import pytest

from repro.ed import (build_hamiltonian, charge_sector_projector, ground_state,
                      ground_state_energy, site_operator_full,
                      total_charge_operator)
from repro.models import (heisenberg_chain_model, hubbard_chain_model,
                          tfim_exact_energy_open_chain, tfim_model)
from repro.mps import ElectronSite, SiteSet, SpinHalfSite


class TestFullSpaceOperators:
    def test_identity_embedding(self):
        sites = SiteSet.uniform(SpinHalfSite(), 3)
        op = site_operator_full(sites, "Sz", 1)
        assert op.shape == (8, 8)
        # trace of Sz is zero
        assert abs(op.diagonal().sum()) < 1e-14

    def test_fermionic_anticommutation_across_sites(self):
        """Jordan-Wigner strings give proper anticommutation between sites."""
        sites = SiteSet.uniform(ElectronSite(), 3)
        a0 = site_operator_full(sites, "Cup", 0)
        a2dag = site_operator_full(sites, "Cdagup", 2)
        anti = (a0 @ a2dag + a2dag @ a0).toarray()
        assert np.allclose(anti, 0.0, atol=1e-12)
        same = (a0 @ a0).toarray()
        assert np.allclose(same, 0.0, atol=1e-12)

    def test_number_operator_consistency(self):
        sites = SiteSet.uniform(ElectronSite(), 2)
        n0 = site_operator_full(sites, "Nup", 0)
        c0 = site_operator_full(sites, "Cup", 0)
        c0d = site_operator_full(sites, "Cdagup", 0)
        assert np.allclose((c0d @ c0).toarray(), n0.toarray(), atol=1e-12)


class TestGroundStates:
    def test_two_site_heisenberg_singlet(self):
        lat, sites, opsum, config = heisenberg_chain_model(2, j2=0.0)
        e = ground_state_energy(opsum, sites)
        assert e == pytest.approx(-0.75)

    def test_heisenberg_4_site_known_value(self):
        lat, sites, opsum, config = heisenberg_chain_model(4, j2=0.0)
        e = ground_state_energy(opsum, sites)
        # exact open-chain 4-site Heisenberg ground state energy
        assert e == pytest.approx(-1.6160254037844386, abs=1e-10)

    def test_charge_sector_restriction(self):
        lat, sites, opsum, config = heisenberg_chain_model(4, j2=0.0)
        e_all = ground_state_energy(opsum, sites)
        e_sz0 = ground_state_energy(opsum, sites, charge=(0,))
        assert e_sz0 == pytest.approx(e_all)  # ground state is in Sz=0
        e_sz4 = ground_state_energy(opsum, sites, charge=(4,))
        assert e_sz4 == pytest.approx(0.75)   # fully polarized state

    def test_empty_sector_rejected(self):
        lat, sites, opsum, config = heisenberg_chain_model(3, j2=0.0)
        with pytest.raises(ValueError):
            ground_state_energy(opsum, sites, charge=(5,))

    def test_hubbard_atomic_limit(self):
        """With t=0, the energy is U per doubly occupied site (here zero)."""
        lat, sites, opsum, config = hubbard_chain_model(2, t=0.0, u=4.0)
        e = ground_state_energy(opsum, sites, charge=(2, 0))
        assert e == pytest.approx(0.0, abs=1e-12)

    def test_hubbard_two_site_exact(self):
        """Two-site Hubbard at half filling: E = (U - sqrt(U^2+16 t^2)) / 2."""
        t, u = 1.0, 4.0
        lat, sites, opsum, config = hubbard_chain_model(2, t=t, u=u)
        e = ground_state_energy(opsum, sites, charge=(2, 0))
        assert e == pytest.approx((u - np.sqrt(u ** 2 + 16 * t ** 2)) / 2)

    def test_tfim_matches_free_fermions(self):
        lat, sites, opsum, config = tfim_model(8, j=1.0, h=0.6)
        e = ground_state_energy(opsum, sites)
        assert e == pytest.approx(tfim_exact_energy_open_chain(8, 1.0, 0.6),
                                  abs=1e-9)

    def test_ground_state_vector_normalized(self):
        lat, sites, opsum, config = heisenberg_chain_model(4, j2=0.0)
        evals, evecs = ground_state(opsum, sites, k=2)
        assert evals[0] <= evals[1]
        assert np.linalg.norm(evecs[:, 0]) == pytest.approx(1.0)


class TestChargeOperators:
    def test_total_charge_operator(self):
        sites = SiteSet.uniform(SpinHalfSite(), 3)
        op = total_charge_operator(sites, 0)
        diag = op.diagonal()
        assert diag[0] == 3    # |UpUpUp> has 2Sz = 3
        assert diag[-1] == -3  # |DnDnDn>

    def test_projector_counts(self):
        sites = SiteSet.uniform(SpinHalfSite(), 4)
        mask = charge_sector_projector(sites, (0,))
        assert mask.sum() == 6  # C(4,2) states with Sz=0

    def test_hamiltonian_commutes_with_charge(self):
        lat, sites, opsum, config = hubbard_chain_model(3, t=1.0, u=2.0)
        h = build_hamiltonian(opsum, sites)
        for component in range(2):
            q = total_charge_operator(sites, component)
            comm = (h @ q - q @ h)
            assert abs(comm).max() < 1e-10
