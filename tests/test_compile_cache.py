"""Sweep-persistent matvec program cache: refresh, invalidate, overlap.

The cache (:class:`repro.symmetry.matvec.SweepProgramCache`) keeps every
bond's compiled program alive across sweep re-visits and refreshes the
static operands in place when the :func:`stage_signature` is unchanged.
These tests pin the invalidation contract — bond-dimension growth, a
mixed-precision dtype promotion and structure-changing environment
rewrites must each retrace (never serve a stale refresh) — plus the
steady-state guarantee (sweeps after warm-up are refresh-only with zero
fresh arena allocations), the bit-identical cost accounting with the
cache on or off, and the optional overlapped compilation mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.base import DirectBackend
from repro.dmrg import DMRGConfig, EffectiveHamiltonian, Sweeps, dmrg
from repro.models import heisenberg_chain_model
from repro.mps import MPS, build_mpo
from repro.perf.matvec_bench import heff_setup
from repro.symmetry.matvec import SweepProgramCache, stage_signature


def _dmrg_problem(nsites: int = 8):
    """A small Heisenberg chain: (mpo, product-state psi0)."""
    _, sites, opsum, state = heisenberg_chain_model(nsites)
    mpo = build_mpo(opsum, sites, compress=True)
    return mpo, MPS.product_state(sites, state)


def _run(mpo, psi0, *, sweeps, rng_seed: int = 11, **config_kwargs):
    """One deterministic DMRG run; returns the result record."""
    res, _ = dmrg(mpo, psi0, DMRGConfig(sweeps=sweeps, **config_kwargs),
                  backend=DirectBackend(),
                  rng=np.random.default_rng(rng_seed))
    return res


class TestRefreshCorrectness:
    """Re-visits refresh in place and compute with the *new* operands."""

    def test_revisit_is_refresh_not_retrace(self):
        left, w1, w2, right, x = heff_setup(8, 12)
        backend = DirectBackend()
        cache = SweepProgramCache.for_backend(backend)
        for _ in range(3):
            heff = EffectiveHamiltonian(left, w1, w2, right, backend,
                                        compile=True, programs=cache)
            heff.apply(x)
            heff.apply(x)
            heff.release()
        assert cache.compiles >= 1
        assert cache.refreshes >= 2 * cache.compiles
        assert cache.retraces == 0

    def test_refresh_uses_new_environment_values(self):
        # an environment rewrite that keeps the block structure must be
        # served by a refresh whose GEMMs see the *new* matrices
        left, w1, w2, right, x = heff_setup(8, 12)
        backend = DirectBackend()
        cache = SweepProgramCache.for_backend(backend)
        heff = EffectiveHamiltonian(left, w1, w2, right, backend,
                                    compile=True, programs=cache)
        y_old = heff.apply(x)
        heff.release()

        new_left = left * 1.7
        revisit = EffectiveHamiltonian(new_left, w1, w2, right, backend,
                                       compile=True, programs=cache)
        revisit.apply(x)             # traced visit is itself exact
        y_new = revisit.apply(x)     # compiled through the refreshed panels
        revisit.release()
        assert cache.refreshes > 0 and cache.retraces == 0

        reference = EffectiveHamiltonian(new_left, w1, w2, right,
                                         DirectBackend(), compile=False)
        y_ref = reference.apply(x)
        assert (y_new - y_ref).norm() < 1e-10 * max(y_ref.norm(), 1.0)
        assert (y_new - y_old).norm() > 1e-3 * y_old.norm()

    def test_structure_change_triggers_retrace(self):
        # the same bond re-visited with different block structure (a grown
        # bond dimension) must release the stale programs and recompile
        small = heff_setup(8, 8)
        grown = heff_setup(8, 16)
        backend = DirectBackend()
        cache = SweepProgramCache.for_backend(backend)
        for (left, w1, w2, right, x) in (small, grown):
            heff = EffectiveHamiltonian(left, w1, w2, right, backend,
                                        compile=True, programs=cache)
            heff.apply(x)
            heff.apply(x)
            heff.release()
        assert cache.retraces > 0
        assert cache.refreshes == 0

    def test_signature_tracks_dtype(self):
        # the cache key must distinguish float32 from float64 operands so
        # the mixed-precision promotion cannot serve a stale program
        from repro.symmetry.blockops import (MixedPrecisionOps,
                                             resolve_block_ops)

        left, w1, w2, right, x = heff_setup(8, 8)
        heff = EffectiveHamiltonian(left, w1, w2, right, DirectBackend())
        stages = heff.stages()
        base = resolve_block_ops(None)
        full = stage_signature(stages, base)
        mixed = stage_signature(stages, MixedPrecisionOps(base, np.float32))
        assert full != mixed


class TestInvalidation:
    """End-to-end: every invalidation source recompiles, energies agree."""

    def test_growing_maxdim_retraces_and_matches_uncompiled(self):
        mpo, psi0 = _dmrg_problem()
        sweeps = Sweeps.ramp(32, 6, cutoff=1e-10)
        res_cached = _run(mpo, psi0, sweeps=sweeps)
        res_plain = _run(mpo, psi0, sweeps=sweeps, compile_matvec=False)
        # the ramp grows bond signatures between sweeps: stale programs
        # must be invalidated (retraced), not refreshed
        assert res_cached.program_retraces > 0
        assert abs(res_cached.energy - res_plain.energy) < 1e-10

    def test_precision_promotion_retraces_and_matches_uncompiled(self):
        mpo, psi0 = _dmrg_problem()
        sweeps = Sweeps.fixed(16, 5, cutoff=1e-10)
        kwargs = dict(warmup_dtype="float32", warmup_sweeps=2)
        res_cached = _run(mpo, psi0, sweeps=sweeps, **kwargs)
        res_plain = _run(mpo, psi0, sweeps=sweeps, compile_matvec=False,
                         **kwargs)
        assert abs(res_cached.energy - res_plain.energy) < 1e-10
        # the float32 -> float64 switch lands at the start of sweep 2:
        # every cached warm-up program is stale there
        promotion = res_cached.sweep_records[2]
        assert promotion.program_retraces > 0

    def test_kill_switches(self):
        mpo, psi0 = _dmrg_problem()
        sweeps = Sweeps.fixed(16, 4, cutoff=1e-10)
        res = _run(mpo, psi0, sweeps=sweeps, program_cache=False)
        assert res.program_compiles == 0 and res.program_refreshes == 0
        res = _run(mpo, psi0, sweeps=sweeps, compile_matvec=False)
        assert res.program_compiles == 0 and res.program_refreshes == 0


class TestSteadyState:
    """After warm-up, sweeps are refresh-only and allocation-free."""

    def test_steady_sweeps_zero_retraces_zero_allocations(self):
        mpo, psi0 = _dmrg_problem()
        res = _run(mpo, psi0, sweeps=Sweeps.fixed(16, 5, cutoff=1e-10))
        steady = res.sweep_records[3:]
        assert steady, "smoke run too short to reach steady state"
        for rec in steady:
            assert rec.program_retraces == 0
            assert rec.program_compiles == 0
            assert rec.program_refreshes > 0
            assert rec.arena_bytes == 0
            assert rec.arena_acquires == rec.arena_reuses == 0
            assert rec.program_refresh_rate == 1.0

    def test_stats_bit_identical_cache_on_off(self):
        mpo, psi0 = _dmrg_problem()
        sweeps = Sweeps.fixed(16, 4, cutoff=1e-10)
        res_on = _run(mpo, psi0, sweeps=sweeps)
        res_off = _run(mpo, psi0, sweeps=sweeps, program_cache=False)
        # energies agree to 1e-10 (a re-visit's first apply runs compiled
        # instead of chained, so the arithmetic differs at machine epsilon)
        # while every cost-model statistic is bit-identical
        assert len(res_on.energies) == len(res_off.energies)
        for e_on, e_off in zip(res_on.energies, res_off.energies):
            assert abs(e_on - e_off) < 1e-10
        assert res_on.plan_cache_hits == res_off.plan_cache_hits
        assert res_on.plan_cache_misses == res_off.plan_cache_misses
        assert res_on.layout_moves == res_off.layout_moves
        assert res_on.layout_reuses == res_off.layout_reuses


class TestOverlapCompile:
    """Background compilation is opt-in and bit-identical."""

    def test_overlap_results_bit_identical(self):
        mpo, psi0 = _dmrg_problem()
        sweeps = Sweeps.fixed(16, 4, cutoff=1e-10)
        res_sync = _run(mpo, psi0, sweeps=sweeps)
        res_overlap = _run(mpo, psi0, sweeps=sweeps, overlap_compile=True)
        assert res_sync.energies == res_overlap.energies
        assert res_sync.plan_cache_hits == res_overlap.plan_cache_hits
        assert res_sync.plan_cache_misses == res_overlap.plan_cache_misses
        assert res_sync.program_compiles == res_overlap.program_compiles
        assert res_sync.program_refreshes == res_overlap.program_refreshes

    def test_overlap_spawns_and_drains_threads(self):
        left, w1, w2, right, x = heff_setup(8, 12)
        backend = DirectBackend()
        cache = SweepProgramCache.for_backend(backend)
        heff = EffectiveHamiltonian(left, w1, w2, right, backend,
                                    compile=True, programs=cache,
                                    overlap_compile=True)
        y1 = heff.apply(x)           # traced; compile spawned in background
        y2 = heff.apply(x)           # joins the pending compile, then runs it
        heff.release()
        assert cache.compiles >= 1
        assert (y1 - y2).norm() < 1e-10 * max(y1.norm(), 1.0)


class TestResultRecords:
    """The new statistics surface in SweepRecord, DMRGResult and reports."""

    def test_sweep_records_and_result_totals_agree(self):
        mpo, psi0 = _dmrg_problem()
        res = _run(mpo, psi0, sweeps=Sweeps.fixed(16, 4, cutoff=1e-10))
        assert res.program_compiles == sum(r.program_compiles
                                           for r in res.sweep_records)
        assert res.program_refreshes == sum(r.program_refreshes
                                            for r in res.sweep_records)
        assert res.program_retraces == sum(r.program_retraces
                                           for r in res.sweep_records)
        assert res.program_refreshes > 0
        assert 0.0 < res.program_refresh_rate < 1.0

    def test_format_sweep_records_shows_program_columns(self):
        from repro.perf.report import format_sweep_records

        mpo, psi0 = _dmrg_problem()
        res = _run(mpo, psi0, sweeps=Sweeps.fixed(16, 4, cutoff=1e-10))
        table = format_sweep_records(res.sweep_records)
        for col in ("compiles", "refreshes", "retraces", "refresh rate",
                    "arena bytes"):
            assert col in table
