"""Tests for the plan-aware distributed cost model.

Covers the lowering of contraction plans into per-block-pair cost
descriptions (``repro.ctf.plan_cost``), the plan-aware charging methods of
:class:`SimWorld`, the plan-driven candidate scorer of ``choose_mapping``,
and the plan-aware mode of the shape-level scaling simulation.  The three
acceptance properties:

(a) plan-aware totals equal the aggregate model for a single dense block,
(b) block-sparse plans price strictly less redistribution than the
    dense-aggregate bound,
(c) ``choose_mapping`` decisions are deterministic for a fixed plan.
"""

import numpy as np
import pytest

from repro.backends import make_backend
from repro.ctf import (BLUE_WATERS, CollectiveModel, GemmShape, PlanCost,
                       SimWorld, choose_mapping, choose_plan_mapping,
                       gemm_shape_of_contraction, lower_plan,
                       plan_candidate_mappings, redistribution_words)
from repro.perf.block_model import GeometricBlockModel
from repro.perf.shapesim import (ShapeTensor, charge_contraction,
                                 plan_shape_contraction)
from repro.symmetry import BlockSparseTensor, Index, build_plan


def make_world() -> SimWorld:
    return SimWorld(nodes=4, procs_per_node=16, machine=BLUE_WATERS)


@pytest.fixture
def model():
    return CollectiveModel.for_machine(BLUE_WATERS, nodes=4,
                                       procs_per_node=16)


def dense_pair():
    """A contraction whose operands are each a single dense block."""
    rng = np.random.default_rng(3)
    left = Index.trivial(24, 1, flow=1)
    mid = Index.trivial(16, 1, flow=1)
    right = Index.trivial(12, 1, flow=1)
    a = BlockSparseTensor.random((left, mid.dual()), flux=(0,), rng=rng)
    b = BlockSparseTensor.random((mid, right.dual()), flux=(0,), rng=rng)
    return a, b, ([1], [0])


def block_sparse_pair(m: int = 96):
    """A genuinely block-sparse contraction from the geometric bond model."""
    rng = np.random.default_rng(5)
    bond = GeometricBlockModel.spins().bond_index(m)
    phys = Index([(0,), (1,)], [1, 1], flow=1)
    a = BlockSparseTensor.random((bond.with_flow(1), bond.dual()),
                                 flux=(0,), rng=rng)
    b = BlockSparseTensor.random((bond.with_flow(1), phys, bond.dual()),
                                 flux=(0,), rng=rng)
    return a, b, ([1], [0])


# --------------------------------------------------------------------------- #
# lowering
# --------------------------------------------------------------------------- #
class TestLowerPlan:
    def test_dense_block_matches_aggregate_quantities(self):
        a, b, axes = dense_pair()
        plan = build_plan(a, b, axes)
        cost = lower_plan(plan)
        assert cost.npairs == 1
        assert cost.operand_a_words == a.nnz == a.dense_size
        assert cost.operand_b_words == b.nnz == b.dense_size
        assert cost.output_words == plan.out_nnz
        assert cost.total_flops == plan.total_flops
        agg = gemm_shape_of_contraction((24, 16), (16, 12), axes[0], axes[1])
        assert cost.pairs[0].shape == agg

    def test_block_sparse_touched_words_bounded_by_nnz(self):
        a, b, axes = block_sparse_pair()
        cost = lower_plan(build_plan(a, b, axes))
        assert cost.npairs > 1
        assert cost.operand_a_words <= a.nnz
        assert cost.operand_b_words <= b.nnz
        assert cost.touched_words == (cost.operand_a_words +
                                      cost.operand_b_words +
                                      cost.output_words)
        assert sum(p.flops for p in cost.pairs) == pytest.approx(
            cost.total_flops)

    def test_lowering_is_memoized_on_the_plan(self):
        a, b, axes = block_sparse_pair()
        plan = build_plan(a, b, axes)
        assert lower_plan(plan) is lower_plan(plan)

    def test_redistribution_words_operands(self):
        a, b, axes = block_sparse_pair()
        plan = build_plan(a, b, axes)
        cost = lower_plan(plan)
        assert redistribution_words(plan, "a") == cost.operand_a_words
        assert redistribution_words(plan, "b") == cost.operand_b_words
        assert redistribution_words(plan, "out") == cost.output_words
        assert redistribution_words(cost, "all") == cost.touched_words
        with pytest.raises(ValueError):
            redistribution_words(plan, "c")


# --------------------------------------------------------------------------- #
# SimWorld.charge_planned_contraction
# --------------------------------------------------------------------------- #
class TestChargePlannedContraction:
    def test_dense_block_equals_aggregate_model(self):
        """(a) single dense block: plan-aware == aggregate, per category."""
        a, b, axes = dense_pair()
        plan = build_plan(a, b, axes)
        w_agg, w_plan = make_world(), make_world()
        s_agg = w_agg.charge_sparse_contraction(plan.total_flops, a.nnz,
                                                b.nnz, plan.out_nnz)
        s_plan = w_plan.charge_planned_contraction(plan)
        assert s_plan == pytest.approx(s_agg, rel=1e-12)
        assert w_plan.profiler.as_dict() == pytest.approx(
            w_agg.profiler.as_dict(), rel=1e-12)

    def test_block_sparse_never_charges_more(self):
        a, b, axes = block_sparse_pair()
        plan = build_plan(a, b, axes)
        w_agg, w_plan = make_world(), make_world()
        s_agg = w_agg.charge_sparse_contraction(plan.total_flops, a.nnz,
                                                b.nnz, plan.out_nnz)
        s_plan = w_plan.charge_planned_contraction(plan)
        assert s_plan <= s_agg * (1.0 + 1e-12)
        # same kernel time (same flops), so any saving is communication-side
        assert w_plan.profiler.flops == w_agg.profiler.flops

    def test_list_algorithm_matches_per_pair_charges(self):
        a, b, axes = block_sparse_pair()
        plan = build_plan(a, b, axes)
        cost = lower_plan(plan)
        w_plan, w_manual = make_world(), make_world()
        s_plan = w_plan.charge_planned_contraction(plan, algorithm="list")
        # same per-pair recipe the list backend uses: each pair priced under
        # its own 2D-vs-3D mapping decision
        s_manual = sum(
            w_manual.charge_block_contraction(
                p.flops, p.words_a, p.words_b, p.words_c,
                num_blocks=cost.npairs,
                largest_block_share=cost.largest_pair_share,
                mapping=decision)
            for p, decision in zip(cost.pairs, w_manual.pair_decisions(cost)))
        assert s_plan == pytest.approx(s_manual, rel=1e-12)
        assert w_plan.profiler.total_seconds() == pytest.approx(
            w_manual.profiler.total_seconds(), rel=1e-12)

    def test_list_algorithm_matches_list_backend_execution(self):
        """Modelled list pricing equals what ListBackend actually charges."""
        from repro.backends import ListBackend
        a, b, axes = block_sparse_pair()
        w_backend, w_model = make_world(), make_world()
        ListBackend(w_backend).contract(a, b, axes)
        w_model.charge_planned_contraction(build_plan(a, b, axes),
                                           algorithm="list")
        assert w_backend.profiler.as_dict() == pytest.approx(
            w_model.profiler.as_dict(), rel=1e-12)

    def test_empty_plan_charges_nothing(self):
        rng = np.random.default_rng(11)
        ix = Index([(0,)], [3], flow=1)
        never = Index([(7,)], [2], flow=1)
        a = BlockSparseTensor.random((ix, never.dual()), flux=(-7,), rng=rng)
        b = BlockSparseTensor.random((never, ix.dual()), flux=(7,), rng=rng)
        b.blocks.clear()
        plan = build_plan(a, b, ([1], [0]))
        world = make_world()
        assert world.charge_planned_contraction(plan) == 0.0
        assert world.modelled_seconds() == 0.0

    def test_accepts_pre_lowered_plan_cost(self):
        a, b, axes = block_sparse_pair()
        plan = build_plan(a, b, axes)
        cost = lower_plan(plan)
        w_plan, w_cost = make_world(), make_world()
        s_plan = w_plan.charge_planned_contraction(
            plan, operand_nnz=(a.nnz, b.nnz))
        s_cost = w_cost.charge_planned_contraction(
            cost, operand_nnz=(a.nnz, b.nnz))
        assert s_cost == pytest.approx(s_plan, rel=1e-12)

    def test_unknown_algorithm_rejected(self):
        a, b, axes = dense_pair()
        plan = build_plan(a, b, axes)
        with pytest.raises(ValueError):
            make_world().charge_planned_contraction(plan, algorithm="summa")


# --------------------------------------------------------------------------- #
# plan-aware redistribution
# --------------------------------------------------------------------------- #
class TestPlanAwareRedistribution:
    def test_strictly_less_than_dense_aggregate_bound(self):
        """(b) block-sparse plans beat the dense-aggregate bound strictly."""
        a, b, axes = block_sparse_pair()
        plan = build_plan(a, b, axes)
        w_dense, w_plan = make_world(), make_world()
        s_dense = w_dense.charge_redistribution(b.dense_size)
        s_plan = w_plan.charge_redistribution(plan=plan, operand="b")
        assert redistribution_words(plan, "b") < b.dense_size
        assert s_plan < s_dense
        assert w_plan.profiler.comm_words < w_dense.profiler.comm_words

    def test_aggregate_elements_cap_planned_volume(self):
        a, b, axes = block_sparse_pair()
        plan = build_plan(a, b, axes)
        w_capped, w_small = make_world(), make_world()
        s_capped = w_capped.charge_redistribution(1.0, plan=plan, operand="b")
        assert s_capped == pytest.approx(w_small.charge_redistribution(1.0))

    def test_requires_elements_or_plan(self):
        with pytest.raises(ValueError):
            make_world().charge_redistribution()

    def test_plain_aggregate_path_unchanged(self):
        w1, w2 = make_world(), make_world()
        assert w1.charge_redistribution(12345.0) == pytest.approx(
            w2.charge_redistribution(12345.0))


# --------------------------------------------------------------------------- #
# plan-driven mapping decisions
# --------------------------------------------------------------------------- #
class TestPlanDrivenMapping:
    def test_decision_deterministic_for_fixed_plan(self, model):
        """(c) the same plan always yields the identical decision."""
        a, b, axes = block_sparse_pair()
        plan = build_plan(a, b, axes)
        decisions = [choose_plan_mapping(plan, 64, model) for _ in range(3)]
        assert decisions[0] == decisions[1] == decisions[2]
        # a structurally identical plan built from scratch agrees too
        rebuilt = build_plan(a, b, axes)
        assert choose_plan_mapping(rebuilt, 64, model) == decisions[0]

    def test_single_pair_matches_shape_scorer(self, model):
        # for a one-pair plan the resident share equals the pair's own
        # operand/output words, so the plan scorer reduces exactly to the
        # aggregate-shape scorer
        a, b, axes = dense_pair()
        plan = build_plan(a, b, axes)
        cost = lower_plan(plan)
        by_plan = choose_plan_mapping(plan, 64, model)
        by_shape = choose_mapping(cost.pairs[0].shape, 64, model)
        assert by_plan == by_shape

    def test_plan_candidates_aggregate_pair_costs(self, model):
        from repro.ctf import candidate_mappings
        shapes = (GemmShape(64, 64, 64), GemmShape(8, 8, 8))
        resident = sum(s.total_words for s in shapes) / 64
        cands = plan_candidate_mappings(shapes, 64, model,
                                        resident_words_per_rank=resident)
        singles = [candidate_mappings(s, 64, model) for s in shapes]
        for combined, per_pair in zip(cands, zip(*singles)):
            assert combined.seconds == pytest.approx(
                sum(d.seconds for d in per_pair))
            assert combined.words_per_rank == pytest.approx(
                sum(d.words_per_rank for d in per_pair))
            # memory: resident floor + largest transient (owned counted once)
            expected = resident + max(
                d.memory_words_per_rank - s.total_words / 64
                for d, s in zip(per_pair, shapes))
            assert combined.memory_words_per_rank == pytest.approx(expected)

    def test_resident_blocks_enforce_memory_floor(self, model):
        """A budget below the owned-block share forces the 2D fallback.

        Every rank holds its share of all distinct touched blocks no matter
        which SUMMA variant runs, so a budget below that floor must degrade
        the plan-driven decision to the smallest-footprint (2D) candidate —
        the paper's memory-limited Cyclops behaviour — instead of approving
        a replicated mapping that cannot fit.
        """
        a, b, axes = block_sparse_pair(192)
        plan = build_plan(a, b, axes)
        cost = lower_plan(plan)
        nprocs = 64
        budget = 0.5 * cost.touched_words / nprocs
        decision = choose_plan_mapping(plan, nprocs, model,
                                       memory_words_per_rank=budget)
        assert decision.algorithm == "summa-2d"
        assert decision.replication == 1
        cands = plan_candidate_mappings(cost.pair_shapes, nprocs, model,
                                        cost.touched_words / nprocs)
        assert all(decision.memory_words_per_rank <=
                   c.memory_words_per_rank for c in cands)

    def test_memory_budget_limits_replication(self, model):
        a, b, axes = block_sparse_pair(192)
        plan = build_plan(a, b, axes)
        unconstrained = choose_plan_mapping(plan, 64, model)
        tight = choose_plan_mapping(plan, 64, model,
                                    memory_words_per_rank=1.0)
        assert tight.memory_words_per_rank <= \
            unconstrained.memory_words_per_rank

    def test_choose_mapping_requires_shape_or_pairs(self, model):
        with pytest.raises(ValueError):
            choose_mapping(None, 64, model)
        with pytest.raises(ValueError):
            choose_plan_mapping(PlanCost((), 0.0, 0.0, 0.0, 0.0, 1.0),
                                64, model)


# --------------------------------------------------------------------------- #
# backends exercise the plan-aware path
# --------------------------------------------------------------------------- #
class TestBackendCharging:
    def test_sparse_sparse_backend_charges_planned_cost(self):
        a, b, axes = block_sparse_pair()
        world = make_world()
        backend = make_backend("sparse-sparse", world)
        result = backend.contract(a, b, axes)
        plan = build_plan(a, b, axes)
        reference = make_world()
        # one shared recipe: operand remapping + planned contraction
        expected = reference.charge_planned_contraction(
            plan, operand_nnz=(a.nnz, b.nnz))
        assert world.modelled_seconds() == pytest.approx(expected, rel=1e-12)
        # numerics still exact: compare against the direct backend
        direct = make_backend("direct").contract(a, b, axes)
        assert np.allclose(result.to_dense(), direct.to_dense())

    def test_backend_and_shapesim_price_identically(self):
        """Real execution and shape-level simulation share one cost model."""
        a, b, axes = block_sparse_pair()
        w_backend = make_world()
        make_backend("sparse-sparse", w_backend).contract(a, b, axes)
        w_shape = make_world()
        charge_contraction(w_shape, "sparse-sparse",
                           ShapeTensor.from_block_tensor(a),
                           ShapeTensor.from_block_tensor(b), axes,
                           plan_aware=True)
        assert w_backend.modelled_seconds() == pytest.approx(
            w_shape.modelled_seconds(), rel=1e-12)
        assert w_backend.profiler.as_dict() == pytest.approx(
            w_shape.profiler.as_dict(), rel=1e-12)

    def test_sparse_dense_backend_sparse_branch_is_plan_aware(self):
        # order-2/3 operands stay below the Davidson-intermediate order,
        # so the sparse (plan-aware) branch prices the contraction
        a, b, axes = block_sparse_pair()
        world = make_world()
        backend = make_backend("sparse-dense", world)
        backend.contract(a, b, axes)
        plan = build_plan(a, b, axes)
        reference = make_world()
        expected = reference.charge_planned_contraction(
            plan, algorithm="sparse-dense")
        assert world.modelled_seconds() == pytest.approx(expected, rel=1e-12)


# --------------------------------------------------------------------------- #
# shape-level simulation in plan-aware mode
# --------------------------------------------------------------------------- #
class TestShapesimPlanAware:
    def test_output_structure_matches_aggregate_path(self):
        gbm = GeometricBlockModel.electrons()
        bond = gbm.bond_index(64)
        phys = Index([(0,), (1,)], [1, 1], flow=1)
        env = ShapeTensor((bond.with_flow(1), bond.dual()))
        x = ShapeTensor((bond.with_flow(1), phys, bond.dual()))
        out_agg, f_agg = charge_contraction(make_world(), "sparse-sparse",
                                            env, x, ([1], [0]))
        out_plan, f_plan = charge_contraction(make_world(), "sparse-sparse",
                                              env, x, ([1], [0]),
                                              plan_aware=True)
        assert f_plan == pytest.approx(f_agg)
        assert set(out_plan.blocks) == set(out_agg.blocks)
        assert out_plan.nnz == out_agg.nnz

    def test_list_algorithm_modes_agree_up_to_pair_mappings(self):
        """Both modes visit the same pairs with the same flops; plan-aware
        mode additionally applies the per-pair 2D-vs-3D mapping crossover
        (the aggregate path keeps Table II's all-3D assumption), so kernel
        time and flops agree exactly while communication/transposition may
        differ only through the mapping decision."""
        gbm = GeometricBlockModel.spins()
        bond = gbm.bond_index(48)
        phys = Index([(0,), (1,)], [1, 1], flow=1)
        env = ShapeTensor((bond.with_flow(1), bond.dual()))
        x = ShapeTensor((bond.with_flow(1), phys, bond.dual()))
        w_agg, w_plan = make_world(), make_world()
        _, f_agg = charge_contraction(w_agg, "list", env, x, ([1], [0]))
        _, f_plan = charge_contraction(w_plan, "list", env, x, ([1], [0]),
                                       plan_aware=True)
        assert f_plan == pytest.approx(f_agg)
        assert w_plan.profiler.flops == pytest.approx(w_agg.profiler.flops)
        assert w_plan.profiler.seconds["gemm"] == pytest.approx(
            w_agg.profiler.seconds["gemm"], rel=1e-12)
        assert w_plan.profiler.seconds["imbalance"] == pytest.approx(
            w_agg.profiler.seconds["imbalance"], rel=1e-12)
        # 2D-mapped small pairs skip the output refold
        assert w_plan.profiler.seconds["transposition"] <= \
            w_agg.profiler.seconds["transposition"] + 1e-15

    def test_plan_cache_reuses_shape_plans(self):
        bond = GeometricBlockModel.spins().bond_index(32)
        env = ShapeTensor((bond.with_flow(1), bond.dual()))
        x = ShapeTensor((bond.with_flow(1), Index.trivial(2, 1),
                         bond.dual()))
        p1 = plan_shape_contraction(env, x, ([1], [0]))
        p2 = plan_shape_contraction(env, x, ([1], [0]))
        assert p1 is p2

    def test_shape_plans_do_not_pollute_global_plan_counter(self):
        from repro.perf import flops as _flops
        bond = GeometricBlockModel.electrons().bond_index(40)
        env = ShapeTensor((bond.with_flow(1), bond.dual()))
        x = ShapeTensor((bond.with_flow(1), Index.trivial(2, 1),
                         bond.dual()))
        counter = _flops.plan_counter()
        before = (counter.hits, counter.misses)
        for _ in range(3):
            plan_shape_contraction(env, x, ([1], [0]))
        assert (counter.hits, counter.misses) == before

    def test_model_dmrg_step_plan_aware_not_worse(self):
        from repro.perf import get_system
        from repro.perf.scaling import plan_aware_comparison
        system = get_system("spins", small=True)
        cmp = plan_aware_comparison(system, 64, BLUE_WATERS, 8,
                                    "sparse-sparse")
        assert cmp["plan_aware"].seconds <= \
            cmp["aggregate"].seconds * (1.0 + 1e-12)
        assert cmp["plan_aware"].useful_flops == pytest.approx(
            cmp["aggregate"].useful_flops)
        assert cmp["plan_aware"].plan_aware
        assert not cmp["aggregate"].plan_aware


# --------------------------------------------------------------------------- #
# geometric bond index + CLI smoke check
# --------------------------------------------------------------------------- #
class TestSupportingPieces:
    def test_geometric_bond_index_realizes_block_dims(self):
        gbm = GeometricBlockModel.electrons()
        ix = gbm.bond_index(200)
        assert list(ix.dims) == gbm.block_dims(200)
        assert ix.nsym == 1
        assert ix.can_contract_with(ix.dual())

    def test_plan_cost_smoke_check_invariants(self):
        from repro.perf.plan_bench import (format_plan_cost_check,
                                           run_plan_cost_check)
        stats = run_plan_cost_check(m=64, nodes=2)
        assert stats["dense_equal"]
        assert stats["block_not_worse"]
        assert stats["redis_strictly_less"]
        text = format_plan_cost_check(stats)
        assert "plan-aware" in text.lower()
