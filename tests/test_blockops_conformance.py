"""Cross-implementation conformance suite for the block-ops seam.

Every implementation registered with
:func:`repro.symmetry.blockops.register_block_ops` is held to the same
contract, automatically: each kernel must be *bit-identical* to the
implementation's own serial reference twin (plain kernels answer with the
numpy baseline; the mixed-precision wrapper is compared against a
mixed-wrapped reference computing in the same dtype), and the modelled cost
accounting — profiler seconds, layout-tracker charges, plan statistics —
must never see the implementation at all.

The suite parametrizes over :func:`registered_block_ops`, so a future GPU
or MPI implementation joins the battery just by registering its factory.
The process executor runs here with its dispatch thresholds forced to zero:
every GEMM and factorization, however tiny, crosses the process boundary,
which is exactly the regime where layout or accumulation-order bugs would
surface as one-ulp divergence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.symmetry import BlockOps, BlockSparseTensor, Index
from repro.symmetry.blockops import (_FACTORIES, create_block_ops,
                                     register_block_ops,
                                     registered_block_ops)

#: implementations whose arithmetic must match the numpy baseline exactly
#: (the mixed wrapper intentionally computes in float32, so it is compared
#: only against its own reduced-precision twin, never against float64)
EXACT_IMPLS = ("numpy", "threaded", "process")


def _force_dispatch(ops):
    """Push every kernel through an implementation's slow path, if it has one.

    For the process executor this zeroes the flop/byte thresholds so even
    4-element GEMMs are pinned, shipped and executed on the workers.
    """
    if hasattr(ops, "min_dispatch_flops"):
        ops.min_dispatch_flops = 0.0
    if hasattr(ops, "min_pin_bytes"):
        ops.min_pin_bytes = 0
    return ops


@pytest.fixture(params=registered_block_ops())
def impl(request):
    """A fresh, fully-dispatching instance of each registered implementation."""
    ops = _force_dispatch(create_block_ops(request.param))
    yield ops
    shutdown = getattr(ops, "shutdown", None)
    if callable(shutdown):
        shutdown()


@pytest.fixture
def reference(impl):
    """The implementation's serial twin, judged bit-for-bit against it."""
    return impl.serial_reference()


def _operand_pairs(rng):
    """GEMM operand pairs covering the layouts the engine actually produces.

    C-contiguous panels, Fortran-ordered transposed views (BLAS picks a
    different micro-kernel per layout), 3-D batch stacks, and exotic strided
    slices that neither pickle nor descriptors may silently re-layout.
    """
    a = rng.standard_normal((17, 33))
    b = rng.standard_normal((33, 9))
    big = rng.standard_normal((48, 40))
    pairs = [
        (a, b),                                        # plain C-contiguous
        (rng.standard_normal((33, 17)).T, b),          # Fortran view lhs
        (a, rng.standard_normal((9, 33)).T),           # Fortran view rhs
        (rng.standard_normal((4, 11, 21)),             # batched 3-D GEMM
         rng.standard_normal((4, 21, 6))),
        (big[::2, ::2], rng.standard_normal((20, 7))), # exotic strides
        (rng.standard_normal((1, 5)),
         rng.standard_normal((5, 1))),                 # degenerate shapes
        (rng.standard_normal((0, 4)),
         rng.standard_normal((4, 3))),                 # zero-size block
    ]
    return pairs


class TestKernelConformance:
    """Each kernel, bit-for-bit against the implementation's serial twin."""

    def test_matmul(self, impl, reference):
        rng = np.random.default_rng(11)
        for a, b in _operand_pairs(rng):
            np.testing.assert_array_equal(impl.matmul(a, b),
                                          reference.matmul(a, b))

    def test_matmul_out(self, impl, reference):
        rng = np.random.default_rng(12)
        for a, b in _operand_pairs(rng):
            shape = np.matmul(np.zeros_like(a), np.zeros_like(b)).shape
            dtype = impl.result_type(a.dtype, b.dtype)
            got = np.full(shape, np.nan, dtype=dtype)
            want = np.full(shape, np.nan, dtype=dtype)
            impl.matmul(a.astype(dtype, copy=False),
                        b.astype(dtype, copy=False), out=got)
            reference.matmul(a.astype(dtype, copy=False),
                             b.astype(dtype, copy=False), out=want)
            np.testing.assert_array_equal(got, want)

    def test_row_split_matmul(self, impl, reference):
        """A GEMM large enough to be row-split across the worker pool."""
        if hasattr(impl, "split_flops"):
            impl.split_flops = 0.0
        rng = np.random.default_rng(13)
        a = rng.standard_normal((64, 24))
        b = rng.standard_normal((24, 18))
        got = np.empty((64, 18))
        want = np.empty((64, 18))
        impl.matmul(a, b, out=got)
        reference.matmul(a, b, out=want)
        np.testing.assert_array_equal(got, want)

    def test_tensordot(self, impl, reference):
        rng = np.random.default_rng(14)
        a = rng.standard_normal((4, 5, 6))
        b = rng.standard_normal((6, 5, 3))
        axes = ([1, 2], [1, 0])
        np.testing.assert_array_equal(impl.tensordot(a, b, axes),
                                      reference.tensordot(a, b, axes))

    def test_concat_and_stack(self, impl, reference):
        rng = np.random.default_rng(15)
        sets = [
            [rng.standard_normal((7, 5)), rng.standard_normal((7, 9))],
            # Fortran-ordered members: numpy carries the input layout into
            # the result, and the implementation must reproduce that choice
            [rng.standard_normal((6, 8)).T, rng.standard_normal((6, 8)).T],
        ]
        for mats in sets:
            axis = 1 if mats[0].shape[0] == mats[1].shape[0] else 0
            got = impl.concat(mats, axis)
            want = reference.concat(mats, axis)
            np.testing.assert_array_equal(got, want)
            assert got.strides == want.strides  # layout, not just values
        same = [rng.standard_normal((5, 4)) for _ in range(3)]
        got = impl.stack(same)
        want = reference.stack(same)
        np.testing.assert_array_equal(got, want)
        assert got.strides == want.strides

    def test_factorizations(self, impl, reference):
        rng = np.random.default_rng(16)
        for shape in [(12, 8), (8, 12), (16, 16), (1, 1)]:
            mat = rng.standard_normal(shape)
            for u0, u1 in zip(impl.svd(mat), reference.svd(mat)):
                np.testing.assert_array_equal(u0, u1)
            for q0, q1 in zip(impl.qr(mat), reference.qr(mat)):
                np.testing.assert_array_equal(q0, q1)
        sym = rng.standard_normal((10, 10))
        sym = sym + sym.T
        for e0, e1 in zip(impl.eigh(sym), reference.eigh(sym)):
            np.testing.assert_array_equal(e0, e1)

    def test_many_variants_match_singles(self, impl, reference):
        rng = np.random.default_rng(17)
        mats = [rng.standard_normal((9, 6)), rng.standard_normal((4, 12)),
                rng.standard_normal((8, 8))]
        for got, want in zip(impl.svd_many(mats),
                             [reference.svd(m) for m in mats]):
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g, w)
        for got, want in zip(impl.qr_many(mats),
                             [reference.qr(m) for m in mats]):
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g, w)

    def test_vector_algebra_and_dtypes(self, impl, reference):
        rng = np.random.default_rng(18)
        x = rng.standard_normal((6, 7))
        y = rng.standard_normal((6, 7))
        assert impl.norm(x) == reference.norm(x)
        np.testing.assert_array_equal(impl.axpy(0.5, x, y),
                                      reference.axpy(0.5, x, y))
        assert impl.result_type(np.float64) == reference.result_type(
            np.float64)
        assert impl.result_type(np.float32, np.float64) == \
            reference.result_type(np.float32, np.float64)

    def test_run_executes_every_task(self, impl):
        hits = []
        impl.run([lambda i=i: hits.append(i) for i in range(8)])
        assert sorted(hits) == list(range(8))

    def test_prepare_roundtrips_values_and_layout(self, impl, reference):
        rng = np.random.default_rng(19)
        plain = rng.standard_normal((20, 30))
        fortran = rng.standard_normal((30, 20)).T
        exotic = rng.standard_normal((40, 40))[::2, ::2]
        for mat in (plain, fortran, exotic):
            got = impl.prepare(mat)
            want = reference.prepare(mat)
            np.testing.assert_array_equal(got, want)
            # the pin must keep BLAS on the same micro-kernel: contiguity
            # flags survive, and exotic strides are never normalized away
            assert got.flags.c_contiguous == want.flags.c_contiguous
            assert got.flags.f_contiguous == want.flags.f_contiguous


def _contraction_pair(seed):
    rng = np.random.default_rng(seed)
    i1 = Index([(0,), (1,)], [3, 4], flow=1)
    i2 = Index([(0,), (1,), (2,)], [2, 3, 2], flow=1)
    i3 = Index([(-1,), (0,), (1,), (2,)], [2, 3, 3, 2], flow=-1)
    i4 = Index([(0,), (1,), (2,)], [3, 2, 2], flow=-1)
    a = BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)
    b = BlockSparseTensor.random([i3.dual(), i4], flux=(0,), rng=rng)
    return a, b


class TestPlannedContraction:
    def test_planned_contract_matches_serial(self, impl, reference):
        from repro.backends import DirectBackend
        a, b = _contraction_pair(3)
        got = DirectBackend(block_ops=impl).contract(a, b, axes=([2], [0]))
        want = DirectBackend(block_ops=reference).contract(
            a, b, axes=([2], [0]))
        assert set(got.blocks) == set(want.blocks)
        for key, blk in want.blocks.items():
            np.testing.assert_array_equal(got.blocks[key], blk)


class TestModelledCostsAcrossImplementations:
    """One DMRG per exact implementation: every modelled number identical."""

    @staticmethod
    def _run(block_ops):
        from repro.backends import ListBackend
        from repro.ctf import BLUE_WATERS, SimWorld
        from repro.dmrg import DMRGConfig, Sweeps, dmrg
        from repro.models import heisenberg_chain_model
        from repro.mps import MPS, build_mpo

        lattice, sites, opsum, config_state = heisenberg_chain_model(8)
        mpo = build_mpo(opsum, sites, compress=True)
        psi0 = MPS.product_state(sites, config_state)
        world = SimWorld(nodes=4, procs_per_node=16, machine=BLUE_WATERS)
        res, _ = dmrg(mpo, psi0,
                      DMRGConfig(sweeps=Sweeps.fixed(16, 3, cutoff=1e-10)),
                      backend=ListBackend(world, block_ops=block_ops),
                      rng=np.random.default_rng(3))
        return (res.energy, world.modelled_seconds(),
                world.layout_tracker.snapshot(),
                res.plan_cache_hits, res.plan_cache_misses)

    def test_energy_and_costs_bit_identical(self):
        baseline = self._run(BlockOps())
        for name in EXACT_IMPLS:
            if name == "numpy":
                continue
            ops = _force_dispatch(create_block_ops(name))
            try:
                got = self._run(ops)
            finally:
                shutdown = getattr(ops, "shutdown", None)
                if callable(shutdown):
                    shutdown()
            assert got[0] == baseline[0], name   # energy, bit-identical
            assert got[1] == baseline[1], name   # modelled seconds
            assert got[2] == baseline[2], name   # layout-tracker charges
            assert got[3:] == baseline[3:], name  # plan statistics

    def test_exact_impls_cover_registry(self):
        """Every registered impl is either exact or an explicit wrapper."""
        for name in registered_block_ops():
            assert name in EXACT_IMPLS or name == "mixed", (
                f"new implementation {name!r} must be added to EXACT_IMPLS "
                "(or given its own accuracy contract here)")


class TestRegistryPlumbing:
    def test_new_registration_joins_suite(self):
        """A registered factory shows up in the conformance parametrization."""

        class _Doubled(BlockOps):
            name = "doubled-demo"

        register_block_ops("doubled-demo", _Doubled)
        try:
            assert "doubled-demo" in registered_block_ops()
            assert isinstance(create_block_ops("doubled-demo"), _Doubled)
        finally:
            _FACTORIES.pop("doubled-demo", None)
        assert "doubled-demo" not in registered_block_ops()

    def test_broken_implementation_fails_loudly(self):
        """The bit-identity assertion really can fail (meta-test)."""

        class _Broken(BlockOps):
            name = "broken-demo"

            def matmul(self, a, b, out=None):
                res = BlockOps.matmul(self, a, b, out=out)
                res = res + 1e-16 * np.ones_like(res)  # one-ulp-ish drift
                if out is not None:
                    out[...] = res
                    return out
                return res

        impl = _Broken()
        reference = impl.serial_reference()
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal((8, 8)), rng.standard_normal((8, 8))
        with pytest.raises(AssertionError):
            np.testing.assert_array_equal(impl.matmul(a, b),
                                          reference.matmul(a, b))
