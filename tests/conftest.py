"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.symmetry import Index, BlockSparseTensor


@pytest.fixture(scope="session", autouse=True)
def shared_memory_leak_guard():
    """Fail the suite if any shared-memory segment survives teardown.

    Every segment the process executor (or anything else using
    :class:`repro.ctf.shm.ShmArena`) creates is tracked in a module-level
    registry until unlinked.  After the last test, shut down the block-ops
    singletons that own worker pools and assert the registry is empty — a
    surviving name is a real leak that would outlive the interpreter.
    """
    yield
    from repro.ctf import shm
    from repro.symmetry import blockops

    blockops.shutdown_all()
    leaked = shm.live_segment_names()
    assert not leaked, (
        f"shared-memory segments leaked past the test session: {leaked}")


@pytest.fixture(scope="session", autouse=True)
def verify_compiled_programs():
    """Statically verify every matvec program compiled during the suite.

    Wraps :meth:`MatvecCompiler._try_compile` so each successfully compiled
    :class:`~repro.symmetry.matvec.MatvecProgram` passes through the
    aliasing/liveness verifier (:mod:`repro.analysis.aliasing`) before it is
    ever executed — a wrong slot map or reissued arena buffer fails the
    compiling test with exact stage/unit coordinates instead of surfacing
    as a numeric diff somewhere downstream.
    """
    from repro.analysis import verify_program
    from repro.symmetry.matvec import MatvecCompiler, SweepProgramCache

    original = MatvecCompiler._try_compile

    def checked(self, x, intermediates):
        program = original(self, x, intermediates)
        if program is not None:
            report = verify_program(program)
            assert report.ok, \
                "compiled program failed static verification:\n" + \
                report.render()
        return program

    # refreshed programs get the same treatment: after a sweep-cache bind
    # rewrites static panels in place, every surviving program must still
    # satisfy the memory discipline
    original_bind = SweepProgramCache.bind

    def checked_bind(self, bond_key, signature, statics):
        programs = original_bind(self, bond_key, signature, statics)
        for program in programs.values():
            report = verify_program(program)
            assert report.ok, \
                "refreshed program failed static verification:\n" + \
                report.render()
        return programs

    MatvecCompiler._try_compile = checked
    SweepProgramCache.bind = checked_bind
    try:
        yield
    finally:
        MatvecCompiler._try_compile = original
        SweepProgramCache.bind = original_bind


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(20200710)


@pytest.fixture
def small_indices():
    """A trio of small U(1) indices suitable for a rank-3 tensor of flux 0."""
    i1 = Index([(0,), (1,)], [2, 3], flow=1, tag="a")
    i2 = Index([(0,), (1,), (2,)], [2, 2, 1], flow=1, tag="b")
    i3 = Index([(0,), (1,), (2,), (3,)], [1, 2, 2, 1], flow=-1, tag="c")
    return i1, i2, i3


@pytest.fixture
def random_tensor(small_indices, rng):
    """A random block tensor over the small indices."""
    return BlockSparseTensor.random(small_indices, flux=(0,), rng=rng)


@pytest.fixture
def spin_chain_problem():
    """A small Heisenberg chain (sites, opsum, MPO, config, ED energy)."""
    from repro.models import heisenberg_chain_model
    from repro.mps import build_mpo
    from repro.ed import ground_state_energy

    lat, sites, opsum, config = heisenberg_chain_model(8)
    mpo = build_mpo(opsum, sites)
    energy = ground_state_energy(opsum, sites, charge=sites.total_charge(config))
    return {"lattice": lat, "sites": sites, "opsum": opsum, "mpo": mpo,
            "config": config, "energy": energy}
