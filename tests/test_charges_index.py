"""Unit tests for charge arithmetic and symmetric indices."""

import numpy as np
import pytest

from repro.symmetry import (Index, add_charges, fuse_indices, negate_charge,
                            scale_charge, sum_charges, zero_charge)
from repro.symmetry.charges import charge_rank, validate_charge


class TestCharges:
    def test_zero_charge(self):
        assert zero_charge(0) == ()
        assert zero_charge(2) == (0, 0)

    def test_add(self):
        assert add_charges((1, -2), (3, 4)) == (4, 2)

    def test_add_rank_mismatch(self):
        with pytest.raises(ValueError):
            add_charges((1,), (1, 2))

    def test_negate(self):
        assert negate_charge((2, -3)) == (-2, 3)

    def test_scale(self):
        assert scale_charge((1, -1), 3) == (3, -3)

    def test_sum(self):
        assert sum_charges([(1,), (2,), (-4,)], 1) == (-1,)
        assert sum_charges([], 2) == (0, 0)

    def test_rank(self):
        assert charge_rank((1, 2, 3)) == 3

    def test_validate(self):
        assert validate_charge([1, 2], 2) == (1, 2)
        with pytest.raises(ValueError):
            validate_charge([1], 2)


class TestIndex:
    def test_basic_properties(self):
        ix = Index([(0,), (2,)], [3, 4], flow=1, tag="x")
        assert ix.dim == 7
        assert ix.nsectors == 2
        assert ix.nsym == 1
        assert ix.sector_dim(1) == 4
        assert ix.sector_charge(1) == (2,)
        assert ix.sector_offset(1) == 3
        assert ix.sector_slice(0) == slice(0, 3)

    def test_invalid_flow(self):
        with pytest.raises(ValueError):
            Index([(0,)], [1], flow=0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Index([(0,), (1,)], [1])

    def test_nonpositive_dim(self):
        with pytest.raises(ValueError):
            Index([(0,)], [0])

    def test_trivial(self):
        ix = Index.trivial(5, nsym=2)
        assert ix.dim == 5
        assert ix.sector_charge(0) == (0, 0)

    def test_dual_flips_flow(self):
        ix = Index([(1,)], [2], flow=1)
        assert ix.dual().flow == -1
        assert ix.dual().dual() == ix

    def test_can_contract(self):
        a = Index([(0,), (1,)], [2, 2], flow=1)
        assert a.can_contract_with(a.dual())
        assert not a.can_contract_with(a)
        b = Index([(0,), (2,)], [2, 2], flow=-1)
        assert not a.can_contract_with(b)

    def test_merged(self):
        ix = Index([(1,), (0,), (1,)], [2, 1, 3], flow=1)
        merged = ix.merged()
        assert merged.sectors == ((0,), (1,))
        assert merged.dims == (1, 5)
        assert merged.dim == ix.dim

    def test_with_flow_and_tag(self):
        ix = Index([(0,)], [1], flow=1, tag="a")
        assert ix.with_flow(-1).flow == -1
        assert ix.with_tag("b").tag == "b"

    def test_hash_and_eq(self):
        a = Index([(0,), (1,)], [1, 2], flow=1)
        b = Index([(0,), (1,)], [1, 2], flow=1)
        assert a == b and hash(a) == hash(b)
        assert a != a.dual()

    def test_charge_lookup(self):
        ix = Index([(0,), (1,), (0,)], [1, 2, 3], flow=1)
        lookup = ix.charge_lookup()
        assert lookup[(0,)] == [0, 2]
        assert lookup[(1,)] == [1]

    def test_from_pairs(self):
        ix = Index.from_pairs([((0,), 2), ((1,), 3)], flow=-1)
        assert ix.dims == (2, 3)
        assert ix.flow == -1


class TestFuse:
    def test_fuse_dims(self):
        a = Index([(0,), (1,)], [2, 3], flow=1)
        b = Index([(0,), (1,)], [1, 2], flow=1)
        fused, fusemap = fuse_indices([a, b], flow=1)
        assert fused.dim == a.dim * b.dim
        # charges 0, 1, 2 are reachable
        assert set(fused.sectors) == {(0,), (1,), (2,)}
        # every sector combination maps into the fused index
        assert set(fusemap) == {(i, j) for i in range(2) for j in range(2)}

    def test_fuse_respects_flows(self):
        a = Index([(0,), (1,)], [1, 1], flow=1)
        b = Index([(0,), (1,)], [1, 1], flow=-1)
        fused, _ = fuse_indices([a, b], flow=1)
        assert set(fused.sectors) == {(-1,), (0,), (1,)}

    def test_fuse_empty(self):
        with pytest.raises(ValueError):
            fuse_indices([])
