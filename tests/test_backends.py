"""Tests for the three contraction-algorithm backends (list / sparse-dense /
sparse-sparse): numerical equivalence and cost-model bookkeeping."""

import numpy as np
import pytest

from repro.backends import (DirectBackend, ListBackend, SparseDenseBackend,
                            SparseSparseBackend, make_backend)
from repro.ctf import BLUE_WATERS, STAMPEDE2, SimWorld
from repro.dmrg import run_dmrg
from repro.mps import MPS, build_mpo
from repro.models import heisenberg_chain_model, hubbard_chain_model
from repro.symmetry import BlockSparseTensor, Index


@pytest.fixture
def contractable_pair(rng):
    i1 = Index([(0,), (1,)], [2, 3], flow=1)
    i2 = Index([(0,), (1,), (2,)], [2, 2, 1], flow=1)
    i3 = Index([(0,), (1,), (2,)], [2, 2, 2], flow=-1)
    a = BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)
    b = BlockSparseTensor.random([i3.dual(), i2.dual()], flux=(0,), rng=rng)
    return a, b


def all_backends():
    world = lambda: SimWorld(nodes=4, procs_per_node=8, machine=BLUE_WATERS)  # noqa: E731
    return [DirectBackend(), ListBackend(world()), SparseDenseBackend(world()),
            SparseSparseBackend(world()),
            SparseSparseBackend(world(), execute_sparse=True)]


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", all_backends(),
                             ids=lambda b: getattr(b, "name", "?") +
                             ("+exec" if getattr(b, "execute_sparse", False) else ""))
    def test_contract_matches_direct(self, backend, contractable_pair):
        a, b = contractable_pair
        ref = a.contract(b, axes=([2], [0]))
        out = backend.contract(a, b, axes=([2], [0]))
        assert np.allclose(out.to_dense(), ref.to_dense(), atol=1e-10)

    @pytest.mark.parametrize("backend", all_backends(),
                             ids=lambda b: getattr(b, "name", "?") +
                             ("+exec" if getattr(b, "execute_sparse", False) else ""))
    def test_svd_reconstruction(self, backend, contractable_pair):
        a, _ = contractable_pair
        u, s, vh, info = backend.svd(a, row_axes=[0, 1], absorb="right")
        rec = u.contract(vh, axes=([2], [0]))
        assert np.allclose(rec.to_dense(), a.to_dense(), atol=1e-10)

    def test_factory(self):
        assert make_backend("direct").name == "direct"
        world = SimWorld()
        assert make_backend("list", world).name == "list"
        assert make_backend("sparse-dense", world).name == "sparse-dense"
        assert make_backend("sparse-sparse", world).name == "sparse-sparse"
        with pytest.raises(ValueError):
            make_backend("unknown", world)
        with pytest.raises(ValueError):
            make_backend("list", None)


class TestCostAccounting:
    def test_list_backend_charges_per_block(self, contractable_pair):
        a, b = contractable_pair
        world = SimWorld(nodes=2, procs_per_node=4, machine=BLUE_WATERS)
        backend = ListBackend(world)
        backend.contract(a, b, axes=([2], [0]))
        # one superstep per block pair (Table II: O(N_b) supersteps)
        assert world.profiler.supersteps >= len(a.blocks)
        assert world.profiler.flops > 0
        assert world.profiler.seconds["gemm"] > 0

    def test_sparse_backend_constant_supersteps(self, contractable_pair):
        a, b = contractable_pair
        world = SimWorld(nodes=2, procs_per_node=4, machine=BLUE_WATERS)
        backend = SparseSparseBackend(world)
        backend.contract(a, b, axes=([2], [0]))
        assert world.profiler.supersteps <= 4  # O(1)

    def test_sparse_dense_charges_full_dense_flops(self, contractable_pair):
        a, b = contractable_pair
        world_sd = SimWorld(nodes=2, procs_per_node=4, machine=BLUE_WATERS)
        world_ss = SimWorld(nodes=2, procs_per_node=4, machine=BLUE_WATERS)
        x = a.contract(b, axes=([2], [0]))  # an order-4 Davidson-like tensor
        y = BlockSparseTensor.random(
            list(x.indices[:2]) + [ix.dual() for ix in x.indices[:2]],
            flux=(0,), rng=np.random.default_rng(0))
        SparseDenseBackend(world_sd).contract(y, x, axes=([2, 3], [0, 1]))
        SparseSparseBackend(world_ss).contract(y, x, axes=([2, 3], [0, 1]))
        # the dense algorithm performs (and is charged for) more flops
        assert world_sd.profiler.flops >= world_ss.profiler.flops

    def test_comm_words_scale_down_with_procs(self, contractable_pair):
        a, b = contractable_pair
        small = SimWorld(nodes=1, procs_per_node=4, machine=BLUE_WATERS)
        large = SimWorld(nodes=16, procs_per_node=16, machine=BLUE_WATERS)
        ListBackend(small).contract(a, b, axes=([2], [0]))
        ListBackend(large).contract(a, b, axes=([2], [0]))
        assert large.profiler.comm_words < small.profiler.comm_words


class TestBackendDMRG:
    """All backends must give the same DMRG energy (they share the algorithm)."""

    @pytest.mark.parametrize("name", ["list", "sparse-dense", "sparse-sparse"])
    def test_heisenberg_energy_equivalence(self, name):
        lat, sites, opsum, config = heisenberg_chain_model(6)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        ref, _ = run_dmrg(mpo, psi0, maxdim=32, nsweeps=5)
        world = SimWorld(nodes=4, procs_per_node=16, machine=STAMPEDE2)
        res, _ = run_dmrg(mpo, psi0, maxdim=32, nsweeps=5,
                          backend=make_backend(name, world))
        assert res.energy == pytest.approx(ref.energy, abs=1e-9)
        assert world.modelled_seconds() > 0
        breakdown = world.profiler.breakdown()
        assert sum(breakdown.values()) == pytest.approx(100.0, abs=1e-6)

    def test_hubbard_energy_equivalence_list(self):
        lat, sites, opsum, config = hubbard_chain_model(4, t=1.0, u=4.0)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        ref, _ = run_dmrg(mpo, psi0, maxdim=48, nsweeps=6)
        world = SimWorld(nodes=2, procs_per_node=16, machine=BLUE_WATERS)
        res, _ = run_dmrg(mpo, psi0, maxdim=48, nsweeps=6,
                          backend=ListBackend(world))
        assert res.energy == pytest.approx(ref.energy, abs=1e-9)
