"""Tests for MPS algebra: addition, MPO application, compression."""

import numpy as np
import pytest

from repro.ed import build_hamiltonian
from repro.models import heisenberg_chain_model, hubbard_chain_model
from repro.mps import (MPS, add, apply_mpo, build_mpo, compress, distance,
                       fidelity, overlap, scale, variational_compress)


@pytest.fixture(scope="module")
def spin_setup():
    """A small Heisenberg chain with MPO and two random MPS."""
    _, sites, opsum, config = heisenberg_chain_model(6)
    mpo = build_mpo(opsum, sites)
    rng = np.random.default_rng(11)
    charge = sites.total_charge(config)
    psi = MPS.random(sites, total_charge=charge, bond_dim=6, rng=rng)
    phi = MPS.random(sites, total_charge=charge, bond_dim=5, rng=rng)
    return sites, opsum, mpo, psi, phi


@pytest.fixture(scope="module")
def electron_setup():
    """A small Hubbard chain (fermions, two conserved charges)."""
    _, sites, opsum, config = hubbard_chain_model(4, u=4.0)
    mpo = build_mpo(opsum, sites)
    rng = np.random.default_rng(5)
    charge = sites.total_charge(config)
    psi = MPS.random(sites, total_charge=charge, bond_dim=6, rng=rng)
    return sites, opsum, mpo, psi


class TestAdd:
    def test_addition_matches_dense_vectors(self, spin_setup):
        _, _, _, psi, phi = spin_setup
        out = add(psi, phi, alpha=0.7, beta=-1.3)
        ref = 0.7 * psi.to_dense_vector() - 1.3 * phi.to_dense_vector()
        assert np.allclose(out.to_dense_vector(), ref)

    def test_bond_dimensions_add(self, spin_setup):
        _, _, _, psi, phi = spin_setup
        out = add(psi, phi)
        for b, (da, db) in enumerate(zip(psi.bond_dimensions(),
                                         phi.bond_dimensions())):
            assert out.bond_dimensions()[b] == da + db

    def test_self_addition_doubles_norm(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        out = add(psi, psi)
        assert abs(overlap(out, out)) == pytest.approx(
            4.0 * abs(overlap(psi, psi)), rel=1e-10)

    def test_subtraction_of_itself_is_zero(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        out = add(psi, psi, alpha=1.0, beta=-1.0)
        assert abs(overlap(out, out)) < 1e-20

    def test_compressed_addition_preserves_state(self, spin_setup):
        _, _, _, psi, phi = spin_setup
        exact = add(psi, phi)
        comp = add(psi, phi, compress_result=True, cutoff=1e-14)
        assert comp.max_bond_dimension() <= exact.max_bond_dimension()
        assert np.allclose(comp.to_dense_vector(), exact.to_dense_vector(),
                           atol=1e-10)

    def test_length_mismatch_rejected(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        _, sites8, opsum8, config8 = heisenberg_chain_model(8)
        other = MPS.product_state(sites8, config8)
        with pytest.raises(ValueError):
            add(psi, other)

    def test_different_total_charge_rejected(self, spin_setup):
        sites, _, _, psi, _ = spin_setup
        up_state = MPS.product_state(sites, ["Up"] * len(sites))
        with pytest.raises(ValueError):
            add(psi, up_state)

    def test_fermionic_addition(self, electron_setup):
        sites, _, _, psi = electron_setup
        rng = np.random.default_rng(17)
        phi = MPS.random(sites, total_charge=psi.total_charge(), bond_dim=4,
                         rng=rng)
        out = add(psi, phi, alpha=2.0, beta=0.5)
        ref = 2.0 * psi.to_dense_vector() + 0.5 * phi.to_dense_vector()
        assert np.allclose(out.to_dense_vector(), ref)


class TestScale:
    def test_scale_matches_dense(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        out = scale(psi, -2.5)
        assert np.allclose(out.to_dense_vector(),
                           -2.5 * psi.to_dense_vector())

    def test_scale_preserves_bond_dims(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        assert scale(psi, 3.0).bond_dimensions() == psi.bond_dimensions()


class TestApplyMPO:
    def test_matches_dense_matrix_vector(self, spin_setup):
        _, _, mpo, psi, _ = spin_setup
        hpsi = apply_mpo(mpo, psi, compress_result=False)
        ref = mpo.to_dense_matrix() @ psi.to_dense_vector()
        assert np.allclose(hpsi.to_dense_vector(), ref, atol=1e-10)

    def test_matches_dense_for_fermions(self, electron_setup):
        sites, opsum, mpo, psi = electron_setup
        hpsi = apply_mpo(mpo, psi, compress_result=False)
        ref = build_hamiltonian(opsum, sites).toarray().real \
            @ psi.to_dense_vector()
        assert np.allclose(hpsi.to_dense_vector(), ref, atol=1e-9)

    def test_uncompressed_bond_dimension_is_k_times_m(self, spin_setup):
        _, _, mpo, psi, _ = spin_setup
        hpsi = apply_mpo(mpo, psi, compress_result=False)
        for b, m in enumerate(psi.bond_dimensions()):
            k = mpo.bond_dimensions()[b]
            assert hpsi.bond_dimensions()[b] == k * m

    def test_compression_reduces_bond_dimension(self, spin_setup):
        _, _, mpo, psi, _ = spin_setup
        exact = apply_mpo(mpo, psi, compress_result=False)
        comp = apply_mpo(mpo, psi, compress_result=True, cutoff=1e-12)
        assert comp.max_bond_dimension() <= exact.max_bond_dimension()
        assert np.allclose(comp.to_dense_vector(), exact.to_dense_vector(),
                           atol=1e-8)

    def test_expectation_value_consistency(self, spin_setup):
        _, _, mpo, psi, _ = spin_setup
        hpsi = apply_mpo(mpo, psi, compress_result=False)
        num = overlap(psi, hpsi)
        assert np.real(num) / abs(overlap(psi, psi)) == pytest.approx(
            mpo.expectation(psi), rel=1e-9)

    def test_length_mismatch_rejected(self, spin_setup):
        _, _, mpo, _, _ = spin_setup
        _, sites8, _, config8 = heisenberg_chain_model(8)
        other = MPS.product_state(sites8, config8)
        with pytest.raises(ValueError):
            apply_mpo(mpo, other)


class TestCompress:
    def test_lossless_compression_is_exact(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        out = compress(psi, cutoff=0.0)
        assert np.allclose(out.to_dense_vector(), psi.to_dense_vector())

    def test_truncation_caps_bond_dimension(self, spin_setup):
        _, _, _, psi, phi = spin_setup
        big = add(psi, phi)
        out = compress(big, max_dim=4)
        assert out.max_bond_dimension() <= 4

    def test_truncated_state_is_close(self, spin_setup):
        _, _, _, psi, phi = spin_setup
        big = add(psi, phi)
        out = compress(big, max_dim=big.max_bond_dimension(), cutoff=1e-14)
        assert fidelity(out, big) == pytest.approx(1.0, abs=1e-10)

    def test_normalize_flag(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        out = compress(scale(psi, 5.0), normalize=True)
        assert abs(overlap(out, out)) == pytest.approx(1.0, rel=1e-10)

    def test_single_site_state(self, spin_setup):
        sites, _, _, _, _ = spin_setup
        from repro.mps import SiteSet, SpinHalfSite
        one = SiteSet.uniform(SpinHalfSite(), 1)
        psi1 = MPS.product_state(one, ["Up"])
        out = compress(psi1, max_dim=2)
        assert np.allclose(out.to_dense_vector(), psi1.to_dense_vector())


class TestVariationalCompress:
    def test_fits_at_full_bond_dimension(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        fitted, fid = variational_compress(psi, psi.max_bond_dimension(),
                                           nsweeps=2)
        assert fid == pytest.approx(1.0, abs=1e-8)

    def test_fidelity_reported_matches_recomputed(self, spin_setup):
        _, _, _, psi, phi = spin_setup
        big = add(psi, phi)
        fitted, fid = variational_compress(big, max_dim=4, nsweeps=3)
        assert fid == pytest.approx(fidelity(fitted, big), abs=1e-10)
        assert fitted.max_bond_dimension() <= 4

    def test_not_worse_than_svd_truncation(self, spin_setup):
        _, _, _, psi, phi = spin_setup
        big = add(psi, phi, alpha=1.0, beta=0.3)
        svd_state = compress(big, max_dim=3)
        fitted, fid = variational_compress(big, max_dim=3, nsweeps=4)
        assert fid >= fidelity(svd_state, big) - 1e-8


class TestErrorMeasures:
    def test_fidelity_of_identical_states(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        assert fidelity(psi, psi) == pytest.approx(1.0)
        assert fidelity(psi, scale(psi, 3.0)) == pytest.approx(1.0)

    def test_distance_zero_for_identical(self, spin_setup):
        _, _, _, psi, _ = spin_setup
        assert distance(psi, psi) == pytest.approx(0.0, abs=1e-8)

    def test_distance_triangle_consistency(self, spin_setup):
        _, _, _, psi, phi = spin_setup
        d = distance(psi, phi)
        dense = np.linalg.norm(psi.to_dense_vector() - phi.to_dense_vector())
        assert d == pytest.approx(dense, rel=1e-8)

    def test_orthogonal_states(self, spin_setup):
        sites, _, _, _, _ = spin_setup
        up_dn = MPS.product_state(sites, ["Up", "Dn"] * (len(sites) // 2))
        dn_up = MPS.product_state(sites, ["Dn", "Up"] * (len(sites) // 2))
        assert fidelity(up_dn, dn_up) == pytest.approx(0.0, abs=1e-12)
