"""Tests for the single-node baseline runner (the ITensor stand-in)."""

import pytest

from repro.baseline import SerialDMRG, serial_reference_energy
from repro.dmrg import Sweeps
from repro.models import heisenberg_chain_model
from repro.mps import MPS, build_mpo
from repro.ed import ground_state_energy


@pytest.fixture(scope="module")
def problem():
    lat, sites, opsum, config = heisenberg_chain_model(8)
    mpo = build_mpo(opsum, sites)
    psi0 = MPS.product_state(sites, config)
    exact = ground_state_energy(opsum, sites, charge=sites.total_charge(config))
    return mpo, psi0, exact


class TestSerialBaseline:
    def test_energy_matches_ed(self, problem):
        mpo, psi0, exact = problem
        summary, psi = SerialDMRG(mpo, psi0).run(maxdim=64, nsweeps=7)
        assert summary.energy == pytest.approx(exact, abs=1e-7)
        assert psi.max_bond_dimension() == summary.max_bond_dimension

    def test_measures_flops_and_time(self, problem):
        mpo, psi0, _ = problem
        summary, _ = SerialDMRG(mpo, psi0).run(maxdim=16, nsweeps=2)
        assert summary.flops > 0
        assert summary.seconds > 0
        assert summary.gflops_rate > 0

    def test_custom_schedule(self, problem):
        mpo, psi0, _ = problem
        summary, _ = SerialDMRG(mpo, psi0).run(
            sweeps=Sweeps.fixed(24, 3, cutoff=1e-9))
        assert summary.result.sweep_records[-1].max_bond_dim <= 24

    def test_reference_energy_helper(self, problem):
        mpo, psi0, exact = problem
        energy = serial_reference_energy(mpo, psi0, maxdim=48, nsweeps=6)
        assert energy == pytest.approx(exact, abs=1e-6)
