"""Sweep-persistent layout tracker: invariants, backend threading, and the
aggregate-charge bugfixes in the sparse backends' SVD format conversions."""

import numpy as np
import pytest

from repro.backends import (ListBackend, SparseDenseBackend,
                            SparseSparseBackend, make_backend)
from repro.ctf import (BLUE_WATERS, CollectiveModel, LayoutTracker, Profiler,
                       SimWorld, TensorLayout, pair_mapping_decisions,
                       redistribution_words)
from repro.ctf.mapping import GemmShape, MappingDecision, summa_2d, summa_3d
from repro.dmrg import run_dmrg
from repro.mps import MPS, build_mpo
from repro.models import heisenberg_chain_model
from repro.perf.block_model import GeometricBlockModel
from repro.perf.shapesim import (ShapeTensor, charge_contraction,
                                 plan_shape_contraction)
from repro.symmetry import BlockSparseTensor, Index
from repro.symmetry.planner import build_plan


def make_world(nodes=4, ppn=16):
    return SimWorld(nodes=nodes, procs_per_node=ppn, machine=BLUE_WATERS)


def shape_pair(m=64):
    bond = GeometricBlockModel.spins().bond_index(m)
    phys = Index([(0,), (1,)], [1, 1], flow=1)
    env = ShapeTensor((bond.with_flow(1), bond.dual()))
    x = ShapeTensor((bond.with_flow(1), phys, bond.dual()))
    return env, x, ([1], [0])


def block_sparse_pair(rng=None):
    rng = rng or np.random.default_rng(3)
    i1 = Index([(0,), (1,)], [2, 3], flow=1)
    i2 = Index([(0,), (1,), (2,)], [2, 2, 1], flow=1)
    i3 = Index([(0,), (1,), (2,)], [2, 2, 2], flow=-1)
    a = BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)
    b = BlockSparseTensor.random([i3.dual(), i2.dual()], flux=(0,), rng=rng)
    return a, b, ([2], [0])


# --------------------------------------------------------------------------- #
# LayoutTracker / TensorLayout
# --------------------------------------------------------------------------- #
class TestLayoutTracker:
    L2D = TensorLayout("summa-2d", (4, 4), 1)
    L3D = TensorLayout("summa-3d", (2, 2, 4), 4)

    def test_first_touch_moves(self):
        t = LayoutTracker()
        assert t.observe("env", self.L2D) is True
        assert t.first_touches == 1 and t.transitions == 0

    def test_unchanged_layout_is_free(self):
        t = LayoutTracker()
        t.observe("env", self.L2D)
        assert t.observe("env", self.L2D) is False
        assert t.reuses == 1 and t.charged_moves == 1

    def test_mapping_change_moves(self):
        t = LayoutTracker()
        t.observe("env", self.L2D)
        assert t.observe("env", self.L3D) is True
        assert t.transitions == 1
        assert t.current("env") == self.L3D

    def test_record_birth_is_free_then_reused(self):
        t = LayoutTracker()
        t.record("hx", self.L3D)
        assert t.births == 1 and t.charged_moves == 0
        assert t.observe("hx", self.L3D) is False

    def test_invalidate_forces_recharge(self):
        t = LayoutTracker()
        t.observe("mps", self.L2D)
        t.invalidate("mps")
        assert t.current("mps") is None
        assert t.observe("mps", self.L2D) is True
        assert t.first_touches == 2

    def test_snapshot_and_reset(self):
        t = LayoutTracker()
        t.observe("a", self.L2D)
        t.observe("a", self.L2D)
        snap = t.snapshot()
        assert snap["observations"] == 2
        assert snap["reuses"] == 1
        assert snap["tracked_operands"] == 1
        t.reset()
        assert t.snapshot()["observations"] == 0

    def test_layout_from_decision_drops_transients(self):
        d1 = MappingDecision("summa-2d", (4, 4), 1, 10.0, 4.0, 100.0, 1e-3)
        d2 = MappingDecision("summa-2d", (4, 4), 1, 99.0, 9.0, 777.0, 5e-2)
        assert TensorLayout.from_decision(d1) == TensorLayout.from_decision(d2)


# --------------------------------------------------------------------------- #
# SimWorld.charge_layout_transition
# --------------------------------------------------------------------------- #
class TestChargeLayoutTransition:
    def test_first_touch_equals_untracked_charge(self):
        env, x, axes = shape_pair()
        plan = plan_shape_contraction(env, x, axes)
        w_tracked, w_plain = make_world(), make_world()
        s_tracked = w_tracked.charge_layout_transition(
            "env", plan=plan, operand="a", elements=env.nnz)
        s_plain = w_plain.charge_redistribution(env.nnz, plan=plan,
                                                operand="a")
        assert s_tracked == pytest.approx(s_plain, rel=1e-12)

    def test_unchanged_mapping_charges_zero(self):
        env, x, axes = shape_pair()
        plan = plan_shape_contraction(env, x, axes)
        w = make_world()
        w.charge_layout_transition("env", plan=plan, operand="a",
                                   elements=env.nnz)
        before = w.modelled_seconds()
        assert w.charge_layout_transition("env", plan=plan, operand="a",
                                          elements=env.nnz) == 0.0
        assert w.modelled_seconds() == before

    def test_mapping_change_charges_again(self):
        w = make_world()
        model = w.collective_model()
        d2 = summa_2d(GemmShape(64, 64, 64), w.nprocs, model)
        d3 = summa_3d(GemmShape(64, 64, 64), w.nprocs, model)
        assert w.charge_layout_transition("x", mapping=d2,
                                          elements=1e4) > 0.0
        assert w.charge_layout_transition("x", mapping=d3,
                                          elements=1e4) > 0.0
        assert w.layout_tracker.transitions == 1

    def test_untracked_key_falls_back_to_per_contraction(self):
        env, x, axes = shape_pair()
        plan = plan_shape_contraction(env, x, axes)
        w_none, w_plain = make_world(), make_world()
        s_none = w_none.charge_layout_transition(None, plan=plan, operand="a",
                                                 elements=env.nnz)
        s_plain = w_plain.charge_redistribution(env.nnz, plan=plan,
                                                operand="a")
        assert s_none == pytest.approx(s_plain, rel=1e-12)
        assert w_none.layout_tracker.observations == 0

    def test_needs_plan_or_mapping(self):
        with pytest.raises(ValueError):
            make_world().charge_layout_transition("x", elements=10.0)

    def test_tracked_sequence_never_above_untracked(self):
        """Invariant: tracker-on totals <= tracker-off, for any sequence."""
        env, x, axes = shape_pair()
        w_on, w_off = make_world(), make_world()
        for _ in range(4):
            charge_contraction(w_on, "sparse-sparse", env, x, axes,
                               plan_aware=True, operand_keys=("env", "x"),
                               out_key="hx")
            charge_contraction(w_off, "sparse-sparse", env, x, axes,
                               plan_aware=True)
        assert w_on.modelled_seconds() <= w_off.modelled_seconds()
        assert w_on.layout_tracker.reuses > 0


# --------------------------------------------------------------------------- #
# backend threading
# --------------------------------------------------------------------------- #
class TestBackendLayoutThreading:
    def test_sparse_sparse_reuses_layouts_across_contractions(self):
        a, b, axes = block_sparse_pair()
        w_on, w_off = make_world(), make_world()
        on = SparseSparseBackend(w_on)
        off = SparseSparseBackend(w_off)
        for _ in range(3):
            on.contract(a, b, axes, operand_keys=("a", "b"), out_key="c")
            off.contract(a, b, axes)
        assert w_on.modelled_seconds() < w_off.modelled_seconds()
        # first contraction charges both operands, later ones are free
        assert w_on.layout_tracker.first_touches == 2
        assert w_on.layout_tracker.reuses == 4

    def test_unkeyed_contract_unchanged(self):
        """Without keys the backend charges the per-contraction recipe."""
        a, b, axes = block_sparse_pair()
        world = make_world()
        SparseSparseBackend(world).contract(a, b, axes)
        reference = make_world()
        expected = reference.charge_planned_contraction(
            build_plan(a, b, axes), operand_nnz=(a.nnz, b.nnz))
        assert world.modelled_seconds() == pytest.approx(expected, rel=1e-12)

    def test_list_backend_accepts_keys(self):
        a, b, axes = block_sparse_pair()
        world = make_world()
        out = ListBackend(world).contract(a, b, axes,
                                          operand_keys=("a", "b"),
                                          out_key="c")
        ref = make_backend("direct").contract(a, b, axes)
        assert np.allclose(out.to_dense(), ref.to_dense())

    def test_dmrg_sweep_reuses_environment_layouts(self):
        """Environments/MPO tensors keep their layout across Davidson
        iterations and sweep steps — the tracker sees real reuse."""
        lat, sites, opsum, config = heisenberg_chain_model(6)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        w_tracked = SimWorld(nodes=4, procs_per_node=16, machine=BLUE_WATERS)
        res, _ = run_dmrg(mpo, psi0, maxdim=16, nsweeps=2,
                          backend=SparseSparseBackend(w_tracked))
        snap = w_tracked.layout_tracker.snapshot()
        assert snap["reuses"] > 0
        assert snap["first_touches"] > 0
        # energies still exact
        ref, _ = run_dmrg(mpo, psi0, maxdim=16, nsweeps=2)
        assert res.energy == pytest.approx(ref.energy, abs=1e-9)

    def test_model_step_tracked_never_worse(self):
        from repro.perf import get_system, model_dmrg_step
        system = get_system("spins", small=True)
        w_on, w_off = make_world(), make_world()
        s = system.middle_site()
        on = [model_dmrg_step(system, 256, w_on, "sparse-sparse", site=j,
                              plan_aware=True, track_layout=True)
              for j in (s, s + 1)]
        off = [model_dmrg_step(system, 256, w_off, "sparse-sparse", site=j,
                               plan_aware=True)
               for j in (s, s + 1)]
        assert w_on.modelled_seconds() <= w_off.modelled_seconds()
        assert sum(st.layout_reuses for st in on) > 0
        assert all(st.layout_reuses == 0 for st in off)

    def test_track_layout_requires_plan_aware(self):
        from repro.perf import get_system, model_dmrg_step
        system = get_system("spins", small=True)
        with pytest.raises(ValueError):
            model_dmrg_step(system, 64, make_world(), "sparse-sparse",
                            track_layout=True)


# --------------------------------------------------------------------------- #
# list backend: per-pair 2D-vs-3D grain-efficiency crossover
# --------------------------------------------------------------------------- #
class TestListMappingCrossover:
    def test_small_pairs_map_2d_large_pairs_3d(self):
        world = make_world()
        model = world.collective_model()
        tiny = Index([(0,)], [4], flow=1)
        big = Index([(0,)], [256], flow=1)
        t_small = ShapeTensor((tiny.with_flow(1), tiny.dual()))
        t_big = ShapeTensor((big.with_flow(1), big.dual()))
        small_plan = plan_shape_contraction(t_small, t_small, ([1], [0]))
        big_plan = plan_shape_contraction(t_big, t_big, ([1], [0]))
        small = pair_mapping_decisions(small_plan, world.nprocs, model)
        large = pair_mapping_decisions(big_plan, world.nprocs, model)
        assert all(d.algorithm == "summa-2d" for d in small)
        assert all(d.algorithm != "summa-2d" for d in large)

    def test_list_backend_counts_mappings(self):
        a, b, axes = block_sparse_pair()
        world = make_world()
        backend = ListBackend(world)
        backend.contract(a, b, axes)
        assert sum(backend.mapping_counts.values()) > 0
        # the tiny test blocks all fall below the grain crossover
        assert set(backend.mapping_counts) == {"summa-2d"}

    def test_2d_pair_transposes_less_than_3d(self):
        w_2d, w_3d = make_world(), make_world()
        model = w_2d.collective_model()
        shape = GemmShape(8, 8, 8)
        d2 = summa_2d(shape, w_2d.nprocs, model)
        w_2d.charge_block_contraction(shape.flops, shape.words_a,
                                      shape.words_b, shape.words_c,
                                      mapping=d2)
        w_3d.charge_block_contraction(shape.flops, shape.words_a,
                                      shape.words_b, shape.words_c)
        assert w_2d.profiler.seconds["transposition"] < \
            w_3d.profiler.seconds["transposition"]
        assert w_2d.profiler.seconds["gemm"] == \
            pytest.approx(w_3d.profiler.seconds["gemm"])


# --------------------------------------------------------------------------- #
# sparse backends: SVD format-conversion charges (regression)
# --------------------------------------------------------------------------- #
class TestSvdConversionCharges:
    def test_format_conversion_volume_pinned(self):
        """The two-phase conversion moves min(nnz, planned words) per phase
        and repacks once."""
        env, x, axes = shape_pair()
        plan = plan_shape_contraction(env, x, axes)
        words = redistribution_words(plan, "out")
        w = make_world()
        w.charge_format_conversion(2 * words, phases=2, plan=plan,
                                   operand="out")
        # the cap binds: each phase moves the plan's words, not 2x of them
        assert w.profiler.comm_words == pytest.approx(
            2 * words / w.nprocs, rel=1e-12)
        assert w.profiler.supersteps == pytest.approx(2.0)

    def test_format_conversion_below_double_redistribution(self):
        """Collapsing the double charge drops one repacking pass."""
        w_conv, w_double = make_world(), make_world()
        s_conv = w_conv.charge_format_conversion(1e6, phases=2)
        s_double = w_double.charge_redistribution(1e6) + \
            w_double.charge_redistribution(1e6)
        assert s_conv < s_double
        assert w_conv.profiler.comm_words == pytest.approx(
            w_double.profiler.comm_words)
        assert w_conv.profiler.seconds["transposition"] == pytest.approx(
            w_double.profiler.seconds["transposition"] / 2.0)

    def test_sparse_sparse_svd_charges_two_phase_conversion(self):
        a, b, axes = block_sparse_pair()
        world = make_world()
        backend = SparseSparseBackend(world)
        t = backend.contract(a, b, axes)
        before = world.profiler.as_dict()
        backend.svd(t, row_axes=[0], absorb="right")
        after = world.profiler.as_dict()
        # reference: the documented recipe, with the producing plan's cap
        plan = build_plan(a, b, axes)
        ref = make_world()
        ref.charge_format_conversion(t.nnz, phases=2, plan=plan,
                                     operand="out")
        rows = t.indices[0].dim
        cols = max(t.dense_size // max(rows, 1), 1)
        ref.charge_svd(min(rows, cols * 4), min(cols, rows * 4))
        expected = ref.profiler.as_dict()
        for key in ("communication", "transposition", "svd", "comm_words",
                    "supersteps"):
            assert after[key] - before[key] == pytest.approx(
                expected[key], rel=1e-12), key

    def test_sparse_dense_svd_densification_is_plan_capped(self):
        a, b, axes = block_sparse_pair()
        world = make_world()
        backend = SparseDenseBackend(world)
        t = backend.contract(a, b, axes)
        before = world.profiler.as_dict()
        backend.svd(t, row_axes=[0], absorb="right")
        after = world.profiler.as_dict()
        plan = build_plan(a, b, axes)
        ref = make_world()
        ref.charge_redistribution(t.nnz, plan=plan, operand="out")
        rows = t.indices[0].dim
        cols = max(t.dense_size // max(rows, 1), 1)
        ref.charge_svd(min(rows, cols * 4), min(cols, rows * 4))
        expected = ref.profiler.as_dict()
        for key in ("communication", "transposition", "svd", "comm_words"):
            assert after[key] - before[key] == pytest.approx(
                expected[key], rel=1e-12), key
        # the densification can never move more than the block-aligned bound
        assert after["comm_words"] - before["comm_words"] <= \
            (min(t.nnz, redistribution_words(plan, "out")) / world.nprocs) + \
            (t.dense_size / world.nprocs ** 0.5) + 1e-9

    def test_conversion_plan_ignored_for_unrelated_tensor(self):
        """A tensor that is not the last plan's output falls back to nnz."""
        a, b, axes = block_sparse_pair()
        world = make_world()
        backend = SparseSparseBackend(world)
        backend.contract(a, b, axes)
        assert backend._conversion_plan(a) is None
        t = backend.contract(a, b, axes)
        assert backend._conversion_plan(t) is not None


# --------------------------------------------------------------------------- #
# profiler: custom categories are reported, not silently dropped
# --------------------------------------------------------------------------- #
class TestProfilerCustomCategories:
    def test_section_label_included_and_sums_to_100(self):
        p = Profiler()
        p.add("gemm", 3.0)
        with p.section("io"):
            pass
        p.seconds["io"] = 1.0  # deterministic value for the assertion
        bd = p.breakdown()
        assert "io" in bd
        assert sum(bd.values()) == pytest.approx(100.0)
        assert bd["io"] == pytest.approx(25.0)
        assert p.total_seconds() == pytest.approx(4.0)

    def test_as_dict_includes_custom_categories(self):
        p = Profiler()
        p.add("svd", 1.0)
        p.add("checkpoint", 2.0, allow_custom=True)
        d = p.as_dict()
        assert d["checkpoint"] == pytest.approx(2.0)
        assert d["total"] == pytest.approx(3.0)

    def test_merge_carries_custom_categories(self):
        p, q = Profiler(), Profiler()
        q.add("io", 2.0, allow_custom=True)
        p.add("gemm", 2.0)
        p.merge(q)
        bd = p.breakdown()
        assert bd["io"] == pytest.approx(50.0)
        assert sum(bd.values()) == pytest.approx(100.0)

    def test_typos_still_rejected_without_optin(self):
        with pytest.raises(ValueError):
            Profiler().add("gem", 1.0)

    def test_reserved_names_rejected(self):
        p = Profiler()
        for name in ("total", "comm_words", "supersteps", "flops", ""):
            with pytest.raises(ValueError):
                p.add(name, 1.0, allow_custom=True)

    def test_world_collective_model_memoized(self):
        w = make_world()
        assert w.collective_model() is w.collective_model()
        assert isinstance(w.collective_model(), CollectiveModel)
