"""Tests for MPS/MPO serialization and DMRG checkpointing."""

import numpy as np
import pytest

from repro.dmrg import (Checkpoint, DMRGConfig, Sweeps, dmrg, load_checkpoint,
                        load_mpo, load_mps, resume_sweep_schedule,
                        run_dmrg, save_checkpoint, save_mpo, save_mps)
from repro.ed import ground_state_energy
from repro.models import heisenberg_chain_model, hubbard_chain_model
from repro.mps import MPS, build_mpo, overlap


@pytest.fixture(scope="module")
def spin_problem():
    _, sites, opsum, config = heisenberg_chain_model(8)
    mpo = build_mpo(opsum, sites)
    psi0 = MPS.product_state(sites, config)
    return sites, opsum, mpo, psi0, config


class TestMPSRoundTrip:
    def test_random_state_round_trip(self, spin_problem, tmp_path):
        sites, _, _, _, config = spin_problem
        rng = np.random.default_rng(2)
        psi = MPS.random(sites, total_charge=sites.total_charge(config),
                         bond_dim=12, rng=rng)
        path = save_mps(tmp_path / "psi.npz", psi)
        loaded = load_mps(path, sites)
        assert len(loaded) == len(psi)
        assert loaded.center == psi.center
        assert loaded.bond_dimensions() == psi.bond_dimensions()
        assert np.allclose(loaded.to_dense_vector(), psi.to_dense_vector())

    def test_product_state_round_trip(self, spin_problem, tmp_path):
        sites, _, _, psi0, _ = spin_problem
        loaded = load_mps(save_mps(tmp_path / "p.npz", psi0), sites)
        assert abs(overlap(loaded, psi0)) == pytest.approx(1.0)

    def test_block_structure_preserved(self, spin_problem, tmp_path):
        sites, _, _, _, config = spin_problem
        rng = np.random.default_rng(7)
        psi = MPS.random(sites, total_charge=sites.total_charge(config),
                         bond_dim=10, rng=rng)
        loaded = load_mps(save_mps(tmp_path / "b.npz", psi), sites)
        for a, b in zip(psi.tensors, loaded.tensors):
            assert set(a.blocks) == set(b.blocks)
            assert a.indices[0].sectors == b.indices[0].sectors
            assert a.flux == b.flux

    def test_wrong_site_count_rejected(self, spin_problem, tmp_path):
        sites, _, _, psi0, _ = spin_problem
        path = save_mps(tmp_path / "x.npz", psi0)
        _, small_sites, _, _ = heisenberg_chain_model(4)
        with pytest.raises(ValueError):
            load_mps(path, small_sites)

    def test_wrong_kind_rejected(self, spin_problem, tmp_path):
        sites, _, mpo, _, _ = spin_problem
        path = save_mpo(tmp_path / "h.npz", mpo)
        with pytest.raises(ValueError):
            load_mps(path, sites)

    def test_fermionic_state_round_trip(self, tmp_path):
        _, sites, _, config = hubbard_chain_model(4, u=4.0)
        rng = np.random.default_rng(5)
        psi = MPS.random(sites, total_charge=sites.total_charge(config),
                         bond_dim=8, rng=rng)
        loaded = load_mps(save_mps(tmp_path / "e.npz", psi), sites)
        assert np.allclose(loaded.to_dense_vector(), psi.to_dense_vector())


class TestMPORoundTrip:
    def test_mpo_round_trip(self, spin_problem, tmp_path):
        sites, _, mpo, _, _ = spin_problem
        loaded = load_mpo(save_mpo(tmp_path / "h.npz", mpo), sites)
        assert loaded.bond_dimensions() == mpo.bond_dimensions()
        assert np.allclose(loaded.to_dense_matrix(), mpo.to_dense_matrix())

    def test_mpo_expectation_after_reload(self, spin_problem, tmp_path):
        sites, _, mpo, psi0, _ = spin_problem
        loaded = load_mpo(save_mpo(tmp_path / "h2.npz", mpo), sites)
        assert loaded.expectation(psi0) == pytest.approx(mpo.expectation(psi0))


class TestCheckpointResume:
    def test_checkpoint_round_trip(self, spin_problem, tmp_path):
        sites, _, mpo, psi0, _ = spin_problem
        result, psi = run_dmrg(mpo, psi0, maxdim=32, nsweeps=4)
        path = save_checkpoint(tmp_path / "ckpt.npz", psi, completed_sweeps=4,
                               energies=result.energies,
                               metadata={"maxdim": 32})
        ckpt = load_checkpoint(path, sites)
        assert isinstance(ckpt, Checkpoint)
        assert ckpt.completed_sweeps == 4
        assert ckpt.energy == pytest.approx(result.energy)
        assert ckpt.metadata["maxdim"] == 32
        assert np.allclose(ckpt.psi.to_dense_vector(), psi.to_dense_vector())

    def test_resume_reaches_same_energy(self, spin_problem, tmp_path):
        """Interrupt after half the sweeps, resume, and match the full run."""
        sites, opsum, mpo, psi0, config = spin_problem
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config))
        full_schedule = Sweeps.ramp(64, 8, cutoff=1e-12)

        # uninterrupted reference run
        ref_result, _ = dmrg(mpo, psi0, DMRGConfig(sweeps=full_schedule))

        # first half
        half = Sweeps(full_schedule.maxdims[:4], full_schedule.cutoffs[:4],
                      full_schedule.davidson_iterations[:4])
        res_a, psi_a = dmrg(mpo, psi0, DMRGConfig(sweeps=half))
        path = save_checkpoint(tmp_path / "half.npz", psi_a,
                               completed_sweeps=4, energies=res_a.energies)

        # resume second half from disk
        ckpt = load_checkpoint(path, sites)
        remaining = resume_sweep_schedule(full_schedule, ckpt)
        assert len(remaining) == 4
        res_b, _ = dmrg(mpo, ckpt.psi, DMRGConfig(sweeps=remaining))

        assert res_b.energy == pytest.approx(ref_result.energy, abs=1e-8)
        assert res_b.energy == pytest.approx(exact, abs=1e-7)

    def test_resume_schedule_empty_when_done(self, spin_problem, tmp_path):
        sites, _, _, psi0, _ = spin_problem
        schedule = Sweeps.fixed(16, 3)
        path = save_checkpoint(tmp_path / "done.npz", psi0, completed_sweeps=3)
        ckpt = load_checkpoint(path, sites)
        remaining = resume_sweep_schedule(schedule, ckpt)
        assert len(remaining) == 0
