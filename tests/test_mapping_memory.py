"""Tests for contraction mapping decisions and the memory tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctf import (BLUE_WATERS, STAMPEDE2, CollectiveModel, GemmShape,
                       MemoryTracker, OutOfMemoryError, candidate_mappings,
                       choose_mapping, dmrg_step_footprint_bytes,
                       gemm_shape_of_contraction, minimum_nodes,
                       redistribution_plan, summa_25d, summa_2d, summa_3d,
                       tensor_grid_for_shape)


@pytest.fixture
def model64():
    return CollectiveModel.for_machine(BLUE_WATERS, nodes=64,
                                       procs_per_node=16)


class TestGemmShape:
    def test_flops_and_words(self):
        s = GemmShape(100, 200, 50)
        assert s.flops == 2.0 * 100 * 200 * 50
        assert s.total_words == 100 * 50 + 50 * 200 + 100 * 200

    def test_from_tensor_contraction(self):
        # (a, b, c) x (c, b, d) over axes (1,2)x(1,0): m=a, n=d, k=b*c
        s = gemm_shape_of_contraction((4, 5, 6), (6, 5, 7),
                                      axes_a=(1, 2), axes_b=(1, 0))
        assert (s.m, s.n, s.k) == (4, 7, 30)

    def test_mismatched_extents_rejected(self):
        with pytest.raises(ValueError):
            gemm_shape_of_contraction((4, 5), (6, 7), axes_a=(1,), axes_b=(0,))

    def test_full_contraction_to_scalar(self):
        s = gemm_shape_of_contraction((4, 5), (4, 5), axes_a=(0, 1),
                                      axes_b=(0, 1))
        assert (s.m, s.n, s.k) == (1, 1, 20)


class TestMappingDecisions:
    def test_3d_moves_fewer_words_than_2d(self, model64):
        shape = GemmShape(4096, 4096, 4096)
        d2 = summa_2d(shape, 1024, model64)
        d3 = summa_3d(shape, 1024, model64)
        assert d3.words_per_rank < d2.words_per_rank

    def test_3d_needs_more_memory_than_2d(self, model64):
        shape = GemmShape(4096, 4096, 4096)
        d2 = summa_2d(shape, 1024, model64)
        d3 = summa_3d(shape, 1024, model64)
        assert d3.memory_words_per_rank > d2.memory_words_per_rank

    def test_replication_capped_at_cube_root(self, model64):
        shape = GemmShape(1024, 1024, 1024)
        d = summa_25d(shape, 64, replication=1000, model=model64)
        assert d.replication <= 4

    def test_choose_without_budget_prefers_avoiding(self, model64):
        shape = GemmShape(8192, 8192, 8192)
        best = choose_mapping(shape, 512, model64)
        d2 = summa_2d(shape, 512, model64)
        assert best.seconds <= d2.seconds

    def test_memory_budget_forces_2d(self, model64):
        shape = GemmShape(8192, 8192, 8192)
        d2 = summa_2d(shape, 512, model64)
        tight = choose_mapping(shape, 512, model64,
                               memory_words_per_rank=d2.memory_words_per_rank)
        assert tight.replication == 1

    def test_impossible_budget_falls_back_to_smallest(self, model64):
        shape = GemmShape(4096, 4096, 4096)
        decision = choose_mapping(shape, 64, model64, memory_words_per_rank=10)
        cands = candidate_mappings(shape, 64, model64)
        assert decision.memory_words_per_rank == min(
            c.memory_words_per_rank for c in cands)

    def test_candidates_include_2d(self, model64):
        shape = GemmShape(256, 256, 256)
        names = {c.algorithm for c in candidate_mappings(shape, 64, model64)}
        assert "summa-2d" in names

    @settings(max_examples=25, deadline=None)
    @given(m=st.integers(min_value=64, max_value=8192),
           n=st.integers(min_value=64, max_value=8192),
           k=st.integers(min_value=64, max_value=8192),
           p=st.sampled_from([16, 64, 256, 1024]))
    def test_communication_decreases_with_more_processors(self, m, n, k, p):
        """The best-available communication volume shrinks with more ranks."""
        model = CollectiveModel.for_machine(STAMPEDE2, nodes=max(p // 64, 1))
        shape = GemmShape(m, n, k)
        few = min(c.words_per_rank
                  for c in candidate_mappings(shape, p, model))
        many = min(c.words_per_rank
                   for c in candidate_mappings(shape, 4 * p, model))
        assert many <= few + 1e-9


class TestRedistribution:
    def test_plan_scales_with_size(self, model64):
        small = redistribution_plan(1e6, 64, model64)
        large = redistribution_plan(1e8, 64, model64)
        assert large.seconds > small.seconds
        assert large.words_per_rank == pytest.approx(1e8 / 64)

    def test_tensor_grid_covers_all_ranks(self):
        grid = tensor_grid_for_shape((4096, 30, 4096), 256)
        prod = 1
        for g in grid:
            prod *= g
        assert prod == 256


class TestMemoryTracker:
    def test_allocate_and_free(self):
        tracker = MemoryTracker(BLUE_WATERS, nodes=4)
        tracker.allocate("mps", 100e9, distributed=True)
        assert tracker.used_bytes_per_node() == pytest.approx(25e9)
        tracker.free("mps")
        assert tracker.used_bytes_per_node() == 0.0
        assert tracker.peak_bytes_per_node == pytest.approx(25e9)

    def test_replicated_allocation_charges_full_size(self):
        tracker = MemoryTracker(BLUE_WATERS, nodes=8)
        tracker.allocate("mpo", 1e9, distributed=False)
        assert tracker.used_bytes_per_node() == pytest.approx(1e9)

    def test_out_of_memory_raises(self):
        tracker = MemoryTracker(BLUE_WATERS, nodes=1)   # 64 GB node
        with pytest.raises(OutOfMemoryError):
            tracker.allocate("big", 100e9, distributed=True)

    def test_distribution_over_more_nodes_fits(self):
        tracker = MemoryTracker(BLUE_WATERS, nodes=4)
        tracker.allocate("big", 100e9, distributed=True)   # 25 GB/node
        assert tracker.would_fit(50e9)

    def test_duplicate_and_missing_names(self):
        tracker = MemoryTracker(BLUE_WATERS, nodes=1)
        tracker.allocate("x", 1e9)
        with pytest.raises(ValueError):
            tracker.allocate("x", 1e9)
        with pytest.raises(KeyError):
            tracker.free("y")

    def test_free_all_keeps_peak(self):
        tracker = MemoryTracker(STAMPEDE2, nodes=2)
        tracker.allocate("a", 10e9)
        tracker.allocate("b", 20e9)
        peak = tracker.peak_bytes_per_node
        tracker.free_all()
        assert tracker.used_bytes_per_node() == 0.0
        assert tracker.peak_bytes_per_node == peak


class TestMinimumNodes:
    def test_small_problem_fits_on_one_node(self):
        assert minimum_nodes(10e9, BLUE_WATERS) == 1

    def test_large_problem_needs_many_nodes(self):
        assert minimum_nodes(1000e9, BLUE_WATERS) >= 16

    def test_sparse_electron_minimum_matches_paper_shape(self):
        """Sparse format at m=8192 needs more Stampede2 nodes than BW nodes
        relative to a single node (4 vs 2 in the paper's setup)."""
        foot_sparse = dmrg_step_footprint_bytes(8192, 26, 4, nsites=36,
                                                algorithm="sparse-dense", q=10)
        bw = minimum_nodes(foot_sparse, BLUE_WATERS)
        s2 = minimum_nodes(foot_sparse, STAMPEDE2)
        assert bw >= 1 and s2 >= 1
        # the list format always needs fewer or equal nodes
        foot_list = dmrg_step_footprint_bytes(8192, 26, 4, nsites=36,
                                              algorithm="list", q=10)
        assert minimum_nodes(foot_list, BLUE_WATERS) <= bw

    def test_replicated_data_limits(self):
        with pytest.raises(OutOfMemoryError):
            minimum_nodes(1e9, BLUE_WATERS, replicated_bytes=100e9)

    def test_footprint_model_monotone_in_m(self):
        small = dmrg_step_footprint_bytes(4096, 26, 4, nsites=36)
        large = dmrg_step_footprint_bytes(32768, 26, 4, nsites=36)
        assert large > small

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            dmrg_step_footprint_bytes(1024, 26, 4, nsites=36, algorithm="dense")
