"""Unit tests for the block-sparse tensor (storage, algebra, Algorithm 2)."""

import numpy as np
import pytest

from repro.symmetry import BlockSparseTensor, Index, outer
from repro.perf import count_flops


def dense_pair(rng):
    """A contractable pair of block tensors plus their dense images."""
    i1 = Index([(0,), (1,)], [2, 3], flow=1)
    i2 = Index([(0,), (1,), (2,)], [2, 2, 1], flow=1)
    i3 = Index([(-1,), (0,), (1,), (2,)], [1, 2, 2, 1], flow=-1)
    i4 = Index([(0,), (2,)], [2, 2], flow=-1)
    a = BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)
    b = BlockSparseTensor.random([i3.dual(), i4], flux=(0,), rng=rng)
    return a, b


class TestConstruction:
    def test_zeros_and_fill(self, small_indices):
        t = BlockSparseTensor.zeros(small_indices, flux=(0,), fill_allowed=True)
        assert t.num_blocks > 0
        assert t.norm() == 0.0

    def test_random_blocks_respect_conservation(self, random_tensor):
        for key in random_tensor.blocks:
            assert random_tensor.key_allowed(key)

    def test_block_shape_matches_indices(self, random_tensor):
        for key, blk in random_tensor.blocks.items():
            assert blk.shape == random_tensor.block_shape(key)

    def test_invalid_block_raises(self, small_indices):
        bad = {(0, 0, 3): np.ones((2, 2, 1))}
        with pytest.raises(ValueError):
            BlockSparseTensor(small_indices, bad, flux=(0,))

    def test_wrong_shape_block_raises(self, small_indices):
        t = BlockSparseTensor.zeros(small_indices, flux=(0,), fill_allowed=True)
        key = next(iter(t.blocks))
        bad = {key: np.ones((1, 1, 1, 1))}
        with pytest.raises(ValueError):
            BlockSparseTensor(small_indices, bad, flux=(0,))

    def test_flux_rank_checked(self, small_indices):
        with pytest.raises(ValueError):
            BlockSparseTensor.zeros(small_indices, flux=(0, 0))

    def test_from_dense_roundtrip(self, random_tensor):
        dense = random_tensor.to_dense()
        back = BlockSparseTensor.from_dense(dense, random_tensor.indices,
                                            flux=random_tensor.flux)
        assert np.allclose(back.to_dense(), dense)

    def test_from_dense_rejects_asymmetric(self, small_indices):
        dense = np.random.default_rng(0).standard_normal(
            tuple(ix.dim for ix in small_indices))
        with pytest.raises(ValueError):
            BlockSparseTensor.from_dense(dense, small_indices, flux=(0,))

    def test_dense_path_single_block(self):
        """With no symmetry the tensor degenerates to one dense block."""
        ix = [Index.trivial(3, nsym=0), Index.trivial(4, nsym=0, flow=-1)]
        t = BlockSparseTensor.random(ix, rng=np.random.default_rng(1))
        assert t.num_blocks == 1
        assert t.fill_fraction == 1.0


class TestAlgebra:
    def test_add_sub_scale(self, random_tensor):
        t2 = random_tensor * 2.0
        s = t2 - random_tensor
        assert np.allclose(s.to_dense(), random_tensor.to_dense())
        assert np.allclose((-random_tensor).to_dense(), -random_tensor.to_dense())
        assert np.allclose((random_tensor / 2.0).to_dense(),
                           random_tensor.to_dense() / 2.0)

    def test_norm_matches_dense(self, random_tensor):
        assert random_tensor.norm() == pytest.approx(
            np.linalg.norm(random_tensor.to_dense()))

    def test_inner_matches_dense(self, random_tensor, rng):
        other = BlockSparseTensor.random(random_tensor.indices, flux=(0,),
                                         rng=rng)
        expected = np.vdot(random_tensor.to_dense(), other.to_dense())
        assert random_tensor.inner(other) == pytest.approx(expected)

    def test_add_incompatible_raises(self, random_tensor):
        other = random_tensor.transpose([1, 0, 2])
        with pytest.raises(ValueError):
            random_tensor + other

    def test_drop_small_blocks(self, random_tensor):
        t = random_tensor.copy()
        key = next(iter(t.blocks))
        t.blocks[key] = t.blocks[key] * 1e-16
        before = t.num_blocks
        t.drop_small_blocks(1e-12)
        assert t.num_blocks == before - 1

    def test_conj_flips_flows_and_flux(self, small_indices, rng):
        t = BlockSparseTensor.random(small_indices, flux=(1,), rng=rng)
        c = t.conj()
        assert c.flux == (-1,)
        assert all(ci.flow == -ti.flow for ci, ti in zip(c.indices, t.indices))
        assert np.allclose(c.to_dense(), np.conj(t.to_dense()))

    def test_transpose_matches_dense(self, random_tensor):
        perm = [2, 0, 1]
        assert np.allclose(random_tensor.transpose(perm).to_dense(),
                           random_tensor.to_dense().transpose(perm))

    def test_transpose_invalid_perm(self, random_tensor):
        with pytest.raises(ValueError):
            random_tensor.transpose([0, 0, 1])


class TestContraction:
    def test_matches_dense_tensordot(self, rng):
        a, b = dense_pair(rng)
        c = a.contract(b, axes=([2], [0]))
        ref = np.tensordot(a.to_dense(), b.to_dense(), axes=([2], [0]))
        assert np.allclose(c.to_dense(), ref)

    def test_multi_axis_contraction(self, rng):
        a, b = dense_pair(rng)
        b2 = BlockSparseTensor.random([a.indices[1].dual(), a.indices[2].dual()],
                                      flux=(0,), rng=rng)
        c = a.contract(b2, axes=([1, 2], [0, 1]))
        ref = np.tensordot(a.to_dense(), b2.to_dense(), axes=([1, 2], [0, 1]))
        assert np.allclose(c.to_dense(), ref)

    def test_full_contraction_returns_scalar(self, random_tensor, rng):
        other = BlockSparseTensor.random(
            [ix.dual() for ix in random_tensor.indices], flux=(0,), rng=rng)
        val = random_tensor.contract(other, axes=([0, 1, 2], [0, 1, 2]))
        ref = np.tensordot(random_tensor.to_dense(), other.to_dense(),
                           axes=([0, 1, 2], [0, 1, 2]))
        assert np.allclose(float(val), ref)

    def test_incompatible_axes_raise(self, rng):
        a, b = dense_pair(rng)
        with pytest.raises(ValueError):
            a.contract(b, axes=([0], [0]))

    def test_flop_counting(self, rng):
        a, b = dense_pair(rng)
        with count_flops() as counter:
            a.contract(b, axes=([2], [0]))
        assert counter.gemm > 0

    def test_outer_product(self, rng):
        i1 = Index([(0,), (1,)], [1, 2], flow=1)
        a = BlockSparseTensor.random([i1, i1.dual()], flux=(0,), rng=rng)
        b = BlockSparseTensor.random([i1, i1.dual()], flux=(0,), rng=rng)
        o = outer(a, b)
        ref = np.multiply.outer(a.to_dense(), b.to_dense())
        assert np.allclose(o.to_dense(), ref)

    def test_nonzero_flux_contraction(self, rng):
        """Contraction of tensors with nonzero flux adds the fluxes."""
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        a = BlockSparseTensor.random([i1, i2], flux=(1,), rng=rng)
        b = BlockSparseTensor.random([i2.dual(), i2], flux=(-1,), rng=rng)
        c = a.contract(b, axes=([1], [0]))
        assert c.flux == (0,)
        ref = np.tensordot(a.to_dense(), b.to_dense(), axes=([1], [0]))
        assert np.allclose(c.to_dense(), ref)


class TestStructure:
    def test_sparsity_counts(self, random_tensor):
        assert random_tensor.nnz == sum(b.size for b in
                                        random_tensor.blocks.values())
        assert 0 < random_tensor.fill_fraction <= 1.0
        assert random_tensor.dense_size == np.prod(random_tensor.shape)

    def test_largest_block_dims(self, random_tensor):
        dims = random_tensor.largest_block_dims()
        sizes = [b.size for b in random_tensor.blocks.values()]
        assert int(np.prod(dims)) == max(sizes)

    def test_allowed_keys_superset_of_blocks(self, random_tensor):
        allowed = set(random_tensor.allowed_keys())
        assert set(random_tensor.blocks).issubset(allowed)
