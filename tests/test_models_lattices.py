"""Tests for lattice builders and model Hamiltonians."""

import numpy as np
import pytest

from repro.models import (chain, heisenberg_opsum, hubbard_opsum,
                          j1j2_cylinder_model, square_cylinder,
                          triangular_cylinder_xc, triangular_hubbard_model,
                          tfim_opsum)
from repro.models.lattices import Bond


class TestLattices:
    def test_chain(self):
        lat = chain(5)
        assert lat.nsites == 5
        assert len(lat.bonds) == 4
        assert lat.interaction_range() == 1

    def test_chain_periodic(self):
        lat = chain(5, periodic=True)
        assert len(lat.bonds) == 5

    def test_square_cylinder_counts(self):
        lx, ly = 4, 3
        lat = square_cylinder(lx, ly, next_nearest=False)
        # vertical bonds: lx*ly (periodic ring), horizontal: (lx-1)*ly
        assert len(lat.bonds_of_kind("nn")) == lx * ly + (lx - 1) * ly
        assert len(lat.bonds_of_kind("nnn")) == 0

    def test_square_cylinder_nnn(self):
        lx, ly = 4, 3
        lat = square_cylinder(lx, ly, next_nearest=True)
        assert len(lat.bonds_of_kind("nnn")) == 2 * (lx - 1) * ly

    def test_paper_spin_lattice(self):
        lat = square_cylinder(20, 10)
        assert lat.nsites == 200
        assert lat.interaction_range() <= 2 * 10 + 1

    def test_triangular_cylinder(self):
        lat = triangular_cylinder_xc(6, 6)
        assert lat.nsites == 36
        # each site has 6 neighbours in the bulk of a triangular lattice
        degrees = [0] * lat.nsites
        for b in lat.bonds:
            degrees[b.i] += 1
            degrees[b.j] += 1
        assert max(degrees) == 6

    def test_column_helpers(self):
        lat = square_cylinder(4, 3)
        assert lat.column_of_site(0) == 0
        assert lat.column_of_site(11) == 3
        assert lat.sites_in_column(1) == [3, 4, 5]

    def test_networkx_export(self):
        lat = square_cylinder(3, 3)
        g = lat.to_networkx()
        assert g.number_of_nodes() == 9
        assert g.number_of_edges() == len({(b.i, b.j) for b in lat.bonds})

    def test_bond_ordering(self):
        b = Bond(5, 2, "nn").ordered()
        assert (b.i, b.j) == (2, 5)


class TestModelOpSums:
    def test_heisenberg_term_count(self):
        lat = square_cylinder(3, 2, next_nearest=True)
        os = heisenberg_opsum(lat, j1=1.0, j2=0.5)
        assert len(os) == 3 * len(lat.bonds)

    def test_heisenberg_j2_zero_skips_nnn(self):
        lat = square_cylinder(3, 2, next_nearest=True)
        os = heisenberg_opsum(lat, j1=1.0, j2=0.0)
        assert len(os) == 3 * len(lat.bonds_of_kind("nn"))

    def test_hubbard_term_count(self):
        lat = triangular_cylinder_xc(3, 2)
        os = hubbard_opsum(lat, t=1.0, u=8.5)
        assert len(os) == 4 * len(lat.bonds_of_kind("nn")) + lat.nsites

    def test_tfim_term_count(self):
        os = tfim_opsum(6, j=1.0, h=0.5)
        assert len(os) == 5 + 6

    def test_paper_models_configuration(self):
        lat, sites, os_, config = j1j2_cylinder_model(4, 3)
        assert sites.total_charge(config) == (0,)
        lat, sites, os_, config = triangular_hubbard_model(3, 2)
        n = lat.nsites
        assert sites.total_charge(config) == (n, 0)

    def test_half_filling_even_sites(self):
        lat, sites, os_, config = triangular_hubbard_model(2, 2)
        charges = sites.total_charge(config)
        assert charges[0] == lat.nsites  # one electron per site
        assert charges[1] == 0           # Sz = 0
