"""Tests for excited-state DMRG (penalty projection)."""

import numpy as np
import pytest

from repro.dmrg import (DMRGConfig, Sweeps, excited_dmrg, find_lowest_states,
                        run_dmrg)
from repro.ed import ground_state
from repro.models import heisenberg_chain_model, hubbard_chain_model
from repro.mps import MPS, build_mpo, overlap


@pytest.fixture(scope="module")
def heisenberg_spectrum():
    """An 8-site Heisenberg chain with its three lowest Sz=0 eigenvalues."""
    _, sites, opsum, config = heisenberg_chain_model(8)
    mpo = build_mpo(opsum, sites)
    psi0 = MPS.product_state(sites, config)
    charge = sites.total_charge(config)
    evals, _ = ground_state(opsum, sites, charge=charge, k=3)
    return sites, opsum, mpo, psi0, np.sort(evals)


class TestExcitedDMRG:
    def test_reduces_to_ground_state_without_penalty(self, heisenberg_spectrum):
        _, _, mpo, psi0, evals = heisenberg_spectrum
        config = DMRGConfig(sweeps=Sweeps.ramp(64, 8, cutoff=1e-12))
        result, _ = excited_dmrg(mpo, psi0, [], config)
        assert result.energy == pytest.approx(evals[0], abs=1e-7)

    def test_first_excited_state(self, heisenberg_spectrum):
        _, _, mpo, psi0, evals = heisenberg_spectrum
        config = DMRGConfig(sweeps=Sweeps.ramp(64, 8, cutoff=1e-12))
        _, gs = excited_dmrg(mpo, psi0, [], config)
        result1, ex1 = excited_dmrg(mpo, psi0, [gs], config, weight=30.0)
        assert result1.energy == pytest.approx(evals[1], abs=1e-5)
        # the excited state is orthogonal to the ground state
        assert abs(overlap(gs, ex1)) < 1e-4

    def test_find_lowest_states_orders_energies(self, heisenberg_spectrum):
        _, _, mpo, psi0, evals = heisenberg_spectrum
        states = find_lowest_states(mpo, psi0, 3, maxdim=64, nsweeps=8,
                                    weight=30.0)
        energies = [e for e, _ in states]
        assert energies == sorted(energies)
        assert energies[0] == pytest.approx(evals[0], abs=1e-6)
        assert energies[1] == pytest.approx(evals[1], abs=1e-4)
        assert energies[2] == pytest.approx(evals[2], abs=1e-3)

    def test_states_mutually_orthogonal(self, heisenberg_spectrum):
        _, _, mpo, psi0, _ = heisenberg_spectrum
        states = find_lowest_states(mpo, psi0, 2, maxdim=64, nsweeps=8,
                                    weight=30.0)
        (_, s0), (_, s1) = states
        assert abs(overlap(s0, s1)) < 1e-4

    def test_invalid_state_count(self, heisenberg_spectrum):
        _, _, mpo, psi0, _ = heisenberg_spectrum
        with pytest.raises(ValueError):
            find_lowest_states(mpo, psi0, 0)

    def test_gap_of_hubbard_chain(self):
        """Charge sector gap of a small Hubbard chain matches ED."""
        _, sites, opsum, config = hubbard_chain_model(4, u=4.0)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        charge = sites.total_charge(config)
        evals, _ = ground_state(opsum, sites, charge=charge, k=2)
        states = find_lowest_states(mpo, psi0, 2, maxdim=64, nsweeps=8,
                                    weight=40.0)
        gap_dmrg = states[1][0] - states[0][0]
        gap_ed = float(np.sort(evals)[1] - np.sort(evals)[0])
        assert gap_dmrg == pytest.approx(gap_ed, abs=1e-3)


class TestAgainstTwoSiteEngine:
    def test_penalized_ground_state_matches_plain_engine(self, heisenberg_spectrum):
        _, _, mpo, psi0, _ = heisenberg_spectrum
        config = DMRGConfig(sweeps=Sweeps.ramp(48, 6, cutoff=1e-12))
        res_plain, _ = run_dmrg(mpo, psi0, maxdim=48, nsweeps=6)
        res_pen, _ = excited_dmrg(mpo, psi0, [], config)
        assert res_pen.energy == pytest.approx(res_plain.energy, abs=1e-7)
