"""Tests of the figure-level scaling harness (on reduced lattices for speed)."""

import pytest

from repro.ctf import BLUE_WATERS, STAMPEDE2, SimWorld
from repro.perf import (column_times, cost_time_points, format_breakdown,
                        format_series, format_table, format_table1, get_system,
                        headline_speedups, itensor_reference, model_dmrg_step,
                        pareto_front, peak_performance,
                        peak_relative_efficiency, strong_scaling,
                        time_breakdown, weak_scaling)


@pytest.fixture(scope="module")
def spins_small():
    return get_system("spins", small=True)


@pytest.fixture(scope="module")
def electrons_small():
    return get_system("electrons", small=True)


class TestStepModel:
    def test_step_cost_positive(self, spins_small):
        world = SimWorld(nodes=4, procs_per_node=16, machine=BLUE_WATERS)
        step = model_dmrg_step(spins_small, 512, world, "list")
        assert step.useful_flops > 0
        assert step.seconds > 0
        assert step.gflops_rate > 0
        assert abs(sum(step.breakdown.values()) - step.seconds) < 1e-9

    def test_flops_grow_with_bond_dimension(self, spins_small):
        w1 = SimWorld(nodes=4, procs_per_node=16, machine=BLUE_WATERS)
        w2 = SimWorld(nodes=4, procs_per_node=16, machine=BLUE_WATERS)
        small = model_dmrg_step(spins_small, 256, w1, "list")
        large = model_dmrg_step(spins_small, 1024, w2, "list")
        # Table II: flops ~ m^3, so x4 in m gives ~x64 in flops
        assert large.useful_flops > 20 * small.useful_flops

    def test_algorithms_have_equal_useful_flops(self, electrons_small):
        """list and sparse-sparse cost 'roughly the same number of total flops'."""
        wl = SimWorld(nodes=2, procs_per_node=16, machine=BLUE_WATERS)
        ws = SimWorld(nodes=2, procs_per_node=16, machine=BLUE_WATERS)
        a = model_dmrg_step(electrons_small, 512, wl, "list")
        b = model_dmrg_step(electrons_small, 512, ws, "sparse-sparse")
        assert a.useful_flops == pytest.approx(b.useful_flops, rel=1e-9)

    def test_sparse_dense_memory_larger(self, electrons_small):
        wl = SimWorld(nodes=2, procs_per_node=16, machine=BLUE_WATERS)
        wd = SimWorld(nodes=2, procs_per_node=16, machine=BLUE_WATERS)
        a = model_dmrg_step(electrons_small, 512, wl, "list")
        b = model_dmrg_step(electrons_small, 512, wd, "sparse-dense")
        assert b.davidson_memory > a.davidson_memory

    def test_itensor_reference_single_node(self, spins_small):
        ref = itensor_reference(spins_small, 512, BLUE_WATERS)
        assert ref.nodes == 1
        assert ref.breakdown["communication"] == 0.0
        assert ref.gflops_rate > 0


class TestFigureExperiments:
    def test_fig5_peak_performance(self, spins_small):
        series = peak_performance(spins_small, BLUE_WATERS, "list",
                                  [256, 512, 1024],
                                  {256: 4, 512: 8, 1024: 16})
        assert len(series.x) == 3
        # rate increases with m and nodes, as in Fig. 5
        assert series.y[-1] > series.y[0]
        assert "nodes" in series.annotations[0]

    def test_fig6_column_times_flat_in_middle(self, spins_small):
        series = column_times(spins_small, 512, BLUE_WATERS, nodes=8)
        assert len(series.x) == spins_small.columns
        middle = series.y[len(series.y) // 2]
        assert series.y[0] <= middle * 1.05  # edge columns are cheaper

    def test_fig7_breakdown_sums_to_100(self, electrons_small):
        bd = time_breakdown(electrons_small, 512, STAMPEDE2, nodes=4,
                            algorithm="sparse-sparse")
        assert sum(bd.values()) == pytest.approx(100.0, abs=1e-6)
        assert bd["gemm"] > 0

    def test_fig8_weak_scaling_series(self, spins_small):
        series = weak_scaling(spins_small, BLUE_WATERS, "list",
                              [(2, 256), (4, 512), (8, 1024)], reference_m=256)
        assert len(series.x) == 3
        assert all(e > 0 for e in series.y)

    def test_fig8b_peak_relative_efficiency(self, spins_small):
        series = peak_relative_efficiency(spins_small, BLUE_WATERS, "list",
                                          nodes_list=[2, 4], ms=[256, 512],
                                          reference_m=256,
                                          procs_per_node_options=(16,))
        assert len(series.x) == 2
        assert all(y > 0 for y in series.y)

    def test_fig9_strong_scaling(self, spins_small):
        speedup, efficiency = strong_scaling(spins_small, BLUE_WATERS, "list",
                                             512, [2, 4, 8])
        assert speedup.y[0] == pytest.approx(1.0)
        assert efficiency.y[0] == pytest.approx(1.0)
        # speedup grows with node count (not necessarily ideally)
        assert speedup.y[-1] > 1.0

    def test_fig10_cost_time_points_and_pareto(self, spins_small):
        points = cost_time_points(spins_small, BLUE_WATERS,
                                  ["list", "sparse-dense"], [256, 512],
                                  [2, 4], procs_per_node_options=(16,))
        assert points
        front = pareto_front(points)
        assert front
        costs = [p["relative_cost"] for p in front]
        times = [p["relative_time"] for p in front]
        assert costs == sorted(costs)
        assert times == sorted(times, reverse=True)

    def test_fig12_electron_strong_scaling(self, electrons_small):
        speedup, _ = strong_scaling(electrons_small, STAMPEDE2,
                                    "sparse-sparse", 512, [2, 4, 8],
                                    procs_per_node=32)
        assert speedup.y[-1] > 1.0

    def test_headline_speedups(self, spins_small):
        rows = headline_speedups(spins_small, BLUE_WATERS, [256, 512],
                                 {256: 2, 512: 8}, reference_m=256)
        assert rows[1]["rate_speedup"] > rows[0]["rate_speedup"]
        assert all(r["relative_cost"] > 0 for r in rows)


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [(1, 2.0), (3, 4.5)], title="T")
        assert "T" in text and "a" in text and "4.5" in text

    def test_format_series(self, spins_small):
        series = peak_performance(spins_small, BLUE_WATERS, "list", [256],
                                  {256: 2})
        text = format_series(series, "m", "GF/s")
        assert "m" in text and "GF/s" in text

    def test_format_breakdown(self):
        text = format_breakdown({"gemm": 50.0, "svd": 50.0})
        assert "gemm" in text and "%" in text

    def test_table1_contains_this_work(self):
        text = format_table1()
        assert "this work" in text
        assert "32768" in text
        assert "Kantian" in text
