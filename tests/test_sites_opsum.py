"""Unit tests for site definitions and operator sums (incl. fermion handling)."""

import numpy as np
import pytest

from repro.mps import ElectronSite, OpSum, SiteSet, SpinHalfSite
from repro.mps.opsum import combine_terms, normalize_opsum, normalize_term


class TestSpinHalfSite:
    def test_operator_algebra(self):
        s = SpinHalfSite()
        sz, sp, sm = s.op("Sz"), s.op("S+"), s.op("S-")
        assert np.allclose(sp @ sm - sm @ sp, 2 * sz)
        assert np.allclose(sz @ sp - sp @ sz, sp)

    def test_charges(self):
        s = SpinHalfSite()
        assert s.state_charges == ((1,), (-1,))
        assert s.op_charge("S+") == (2,)
        assert s.op_charge("Sz") == (0,)

    def test_sx_has_no_definite_charge(self):
        s = SpinHalfSite()
        with pytest.raises(ValueError):
            s.op_charge("Sx")

    def test_no_conservation(self):
        s = SpinHalfSite(conserve=None)
        assert s.nsym == 0
        assert s.op_charge("Sx") == ()

    def test_composite_operator(self):
        s = SpinHalfSite()
        assert np.allclose(s.op("S+*S-"), s.op("S+") @ s.op("S-"))

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            SpinHalfSite().op("Qx")

    def test_invalid_conserve(self):
        with pytest.raises(ValueError):
            SpinHalfSite(conserve="Q")


class TestElectronSite:
    def test_anticommutation_on_site(self):
        s = ElectronSite()
        cup, cdn = s.op("Cup"), s.op("Cdn")
        cdagup = s.op("Cdagup")
        # {c_up, c^+_up} = 1, {c_up, c_dn} = 0 within a site
        assert np.allclose(cup @ cdagup + cdagup @ cup, np.eye(4))
        assert np.allclose(cup @ cdn + cdn @ cup, np.zeros((4, 4)))

    def test_number_operators(self):
        s = ElectronSite()
        assert np.allclose(np.diag(s.op("Ntot")), [0, 1, 1, 2])
        assert np.allclose(np.diag(s.op("Nupdn")), [0, 0, 0, 1])

    def test_jw_string(self):
        s = ElectronSite()
        f = s.op("F")
        assert np.allclose(f @ f, np.eye(4))
        assert np.allclose(np.diag(f), [1, -1, -1, 1])

    def test_charges_nsz(self):
        s = ElectronSite()
        assert s.op_charge("Cdagup") == (1, 1)
        assert s.op_charge("Cdn") == (-1, 1)
        assert s.op_charge("Nupdn") == (0, 0)

    def test_fermionic_parity(self):
        s = ElectronSite()
        assert s.is_fermionic("Cup")
        assert not s.is_fermionic("Ntot")
        assert not s.is_fermionic("Cdagup*Cup")
        assert s.is_fermionic("Cdagup*F")

    def test_conserve_n_only(self):
        s = ElectronSite(conserve="N")
        assert s.nsym == 1
        assert s.op_charge("Cdagdn") == (1,)


class TestSiteSet:
    def test_uniform(self):
        sites = SiteSet.uniform(SpinHalfSite(), 5)
        assert len(sites) == 5
        assert sites.dims == [2] * 5
        assert sites.nsym == 1

    def test_total_charge(self):
        sites = SiteSet.uniform(SpinHalfSite(), 4)
        assert sites.total_charge(["Up", "Up", "Dn", "Dn"]) == (0,)
        assert sites.total_charge([0, 0, 0, 1]) == (2,)

    def test_mixed_nsym_rejected(self):
        with pytest.raises(ValueError):
            SiteSet([SpinHalfSite(), SpinHalfSite(conserve=None)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SiteSet([])


class TestOpSum:
    def test_add_and_iterate(self):
        os = OpSum()
        os.add(1.0, "Sz", 0, "Sz", 1)
        os += (0.5, "S+", 1, "S-", 2)
        assert len(os) == 2
        assert os.max_site() == 2

    def test_invalid_add(self):
        with pytest.raises(ValueError):
            OpSum().add(1.0, "Sz")
        with pytest.raises(TypeError):
            OpSum().add(1.0, 0, "Sz")

    def test_scaled_and_sum(self):
        a = OpSum().add(1.0, "Sz", 0)
        b = OpSum().add(2.0, "Sz", 1)
        c = a.scaled(3.0) + b
        assert len(c) == 2
        assert c.terms[0].coefficient == 3.0


class TestNormalization:
    def test_bosonic_term_sorted(self):
        sites = SiteSet.uniform(SpinHalfSite(), 4)
        os = OpSum().add(2.0, "Sz", 3, "Sz", 1)
        nt = normalize_term(os.terms[0], sites)
        assert [s for s, _ in nt.site_ops] == [1, 3]
        assert nt.coefficient == 2.0
        assert nt.jw_sites == []

    def test_fermionic_reorder_sign(self):
        sites = SiteSet.uniform(ElectronSite(), 4)
        os = OpSum().add(1.0, "Cdagup", 2, "Cup", 0)
        nt = normalize_term(os.terms[0], sites)
        # reordering two fermionic operators flips the sign
        assert nt.coefficient == -1.0
        assert [s for s, _ in nt.site_ops] == [0, 2]
        assert nt.jw_sites == [1]
        # the leftmost fermionic operator picks up the on-site string
        assert nt.site_ops[0][1].endswith("*F")

    def test_same_site_merge(self):
        sites = SiteSet.uniform(ElectronSite(), 2)
        os = OpSum().add(1.0, "Cdagup", 0, "Cup", 0)
        nt = normalize_term(os.terms[0], sites)
        assert len(nt.site_ops) == 1
        assert nt.site_ops[0][1] == "Cdagup*Cup"

    def test_odd_parity_rejected(self):
        sites = SiteSet.uniform(ElectronSite(), 2)
        os = OpSum().add(1.0, "Cup", 0)
        with pytest.raises(ValueError):
            normalize_term(os.terms[0], sites)

    def test_combine_terms_merges_duplicates(self):
        sites = SiteSet.uniform(SpinHalfSite(), 3)
        os = OpSum()
        os.add(1.0, "Sz", 0, "Sz", 1)
        os.add(2.0, "Sz", 0, "Sz", 1)
        os.add(-3.0, "Sz", 1, "Sz", 2)
        os.add(3.0, "Sz", 1, "Sz", 2)
        combined = combine_terms(normalize_opsum(os, sites), tol=1e-12)
        assert len(combined) == 1
        assert combined[0].coefficient == pytest.approx(3.0)
