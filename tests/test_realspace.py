"""Tests for the real-space block-parallel DMRG baseline."""

import pytest

from repro.baseline import (RealSpaceParallelDMRG, RealSpaceResult,
                            partition_sites, realspace_reference_energy)
from repro.dmrg import run_dmrg
from repro.ed import ground_state_energy
from repro.models import heisenberg_chain_model
from repro.mps import MPS, build_mpo


@pytest.fixture(scope="module")
def heisenberg10():
    _, sites, opsum, config = heisenberg_chain_model(10)
    mpo = build_mpo(opsum, sites)
    psi0 = MPS.product_state(sites, config)
    exact = ground_state_energy(opsum, sites,
                                charge=sites.total_charge(config))
    return sites, opsum, mpo, psi0, exact


class TestPartition:
    def test_covers_all_sites(self):
        ranges = partition_sites(20, 4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 19
        covered = set()
        for lo, hi in ranges:
            covered.update(range(lo, hi + 1))
        assert covered == set(range(20))

    def test_each_block_has_two_sites(self):
        for nworkers in (1, 2, 3, 5):
            for offset in (0, 1, 2):
                for lo, hi in partition_sites(20, nworkers, offset=offset):
                    assert hi - lo >= 1

    def test_offset_moves_boundaries(self):
        r0 = partition_sites(20, 4, offset=0)
        r1 = partition_sites(20, 4, offset=2)
        assert r0 != r1

    def test_too_many_workers_rejected(self):
        with pytest.raises(ValueError):
            partition_sites(6, 4)
        with pytest.raises(ValueError):
            partition_sites(6, 0)


class TestRealSpaceDMRG:
    def test_single_worker_matches_standard_dmrg(self, heisenberg10):
        _, _, mpo, psi0, exact = heisenberg10
        result, _ = RealSpaceParallelDMRG(mpo, psi0, 1).run(
            maxdim=64, iterations=4)
        assert result.energy == pytest.approx(exact, abs=1e-6)

    def test_two_workers_with_shifting_converge(self, heisenberg10):
        _, _, mpo, psi0, exact = heisenberg10
        result, psi = RealSpaceParallelDMRG(mpo, psi0, 2).run(
            maxdim=64, iterations=8, shift_boundaries=True)
        assert result.energy == pytest.approx(exact, abs=1e-4)
        assert psi.max_bond_dimension() <= 64
        assert len(result.energies) == 8

    def test_boundary_shifting_not_worse(self, heisenberg10):
        _, _, mpo, psi0, _ = heisenberg10
        res_shift, _ = RealSpaceParallelDMRG(mpo, psi0, 2).run(
            maxdim=48, iterations=6, shift_boundaries=True)
        res_fixed, _ = RealSpaceParallelDMRG(mpo, psi0, 2).run(
            maxdim=48, iterations=6, shift_boundaries=False)
        assert res_shift.energy <= res_fixed.energy + 1e-8

    def test_blocked_sweeps_less_accurate_per_iteration(self, heisenberg10):
        """At matched sweep counts the blocked algorithm trails full DMRG."""
        _, _, mpo, psi0, exact = heisenberg10
        full_result, _ = run_dmrg(mpo, psi0, maxdim=48, nsweeps=4)
        blocked, _ = RealSpaceParallelDMRG(mpo, psi0, 3).run(
            maxdim=48, iterations=2, shift_boundaries=False, warmup_sweeps=1)
        assert full_result.energy <= blocked.energy + 1e-8
        assert full_result.energy == pytest.approx(exact, abs=1e-5)

    def test_worker_energy_records(self, heisenberg10):
        _, _, mpo, psi0, _ = heisenberg10
        result, _ = RealSpaceParallelDMRG(mpo, psi0, 2).run(
            maxdim=32, iterations=3)
        assert isinstance(result, RealSpaceResult)
        for record in result.records:
            assert len(record.worker_energies) == 2
            assert record.max_bond_dimension >= 1
        assert result.is_monotonic(tol=1e-2) in (True, False)  # well-defined

    def test_reference_energy_helper(self, heisenberg10):
        _, _, mpo, psi0, exact = heisenberg10
        e = realspace_reference_energy(mpo, psi0, 2, maxdim=48, iterations=6)
        assert e == pytest.approx(exact, abs=1e-3)

    def test_invalid_inputs(self, heisenberg10):
        _, _, mpo, psi0, _ = heisenberg10
        with pytest.raises(ValueError):
            RealSpaceParallelDMRG(mpo, psi0, 0)
        _, small_sites, small_os, small_cfg = heisenberg_chain_model(4)
        small_psi = MPS.product_state(small_sites, small_cfg)
        with pytest.raises(ValueError):
            RealSpaceParallelDMRG(mpo, small_psi, 1)
