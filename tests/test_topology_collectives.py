"""Tests for the interconnect topologies and collective cost models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctf import (BLUE_WATERS, STAMPEDE2, CollectiveModel, FatTree,
                       SingleNode, Torus3D, topology_for_machine)


class TestTorus3D:
    def test_node_count(self):
        t = Torus3D((4, 4, 4))
        assert t.nodes == 64

    def test_for_nodes_factors_near_cubic(self):
        t = Torus3D.for_nodes(256)
        assert t.nodes == 256
        assert max(t.dims) / min(t.dims) <= 4

    def test_average_hops_grow_with_size(self):
        small = Torus3D.for_nodes(8)
        large = Torus3D.for_nodes(512)
        assert large.average_hops() > small.average_hops()

    def test_diameter_is_sum_of_half_extents(self):
        t = Torus3D((4, 6, 8))
        assert t.diameter() == 2 + 3 + 4

    def test_single_node_degenerate(self):
        t = Torus3D((1, 1, 1))
        assert t.average_hops() == 0.0
        assert t.diameter() == 0

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Torus3D((0, 2, 2))

    def test_bisection_smaller_than_fat_tree(self):
        """A torus has lower relative bisection than a full fat-tree."""
        n = 256
        torus = Torus3D.for_nodes(n)
        tree = FatTree(n)
        assert torus.bisection_links() < tree.bisection_links() * 2
        assert torus.alltoall_congestion() >= tree.alltoall_congestion()


class TestFatTree:
    def test_levels_grow_with_nodes(self):
        assert FatTree(16).levels() <= FatTree(4096).levels()

    def test_full_bisection_congestion_is_one(self):
        assert FatTree(128).alltoall_congestion() == pytest.approx(1.0)

    def test_oversubscription_increases_congestion(self):
        tapered = FatTree(128, oversubscription=2.0)
        assert tapered.alltoall_congestion() > 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FatTree(0)
        with pytest.raises(ValueError):
            FatTree(16, radix=1)
        with pytest.raises(ValueError):
            FatTree(16, oversubscription=0.5)


class TestTopologyFactory:
    def test_machine_presets(self):
        assert isinstance(topology_for_machine("blue-waters", 64), Torus3D)
        assert isinstance(topology_for_machine(BLUE_WATERS.name, 64), Torus3D)
        assert isinstance(topology_for_machine("stampede2", 64), FatTree)
        assert isinstance(topology_for_machine(STAMPEDE2.name, 64), FatTree)
        assert isinstance(topology_for_machine("laptop", 1), SingleNode)

    def test_single_node_always_degenerate(self):
        assert isinstance(topology_for_machine("blue-waters", 1), SingleNode)

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            topology_for_machine("summit", 16)

    def test_effective_bandwidth_patterns(self):
        t = Torus3D.for_nodes(64)
        assert t.effective_bandwidth_gb_s("nearest") >= \
            t.effective_bandwidth_gb_s("alltoall")
        with pytest.raises(ValueError):
            t.effective_bandwidth_gb_s("ring")


class TestCollectiveModel:
    @pytest.fixture
    def model(self):
        return CollectiveModel.for_machine(BLUE_WATERS, nodes=64,
                                           procs_per_node=16)

    def test_costs_are_positive(self, model):
        for name in ("broadcast", "reduce", "allreduce", "allgather",
                     "reduce_scatter", "alltoall", "scatter", "gather"):
            cost = getattr(model, name)(1e6, 64)
            assert cost.seconds > 0
            assert cost.words > 0
        assert model.barrier(64).seconds > 0
        assert model.barrier(64).words == 0

    def test_single_rank_is_free(self, model):
        assert model.broadcast(1e6, 1).seconds == 0.0
        assert model.allreduce(1e6, 1).seconds == 0.0
        assert model.barrier(1).seconds == 0.0

    def test_allreduce_is_reduce_scatter_plus_allgather(self, model):
        n, p = 3e6, 32
        combined = model.reduce_scatter(n, p) + model.allgather(n, p)
        assert model.allreduce(n, p).seconds == pytest.approx(combined.seconds)

    def test_broadcast_scales_logarithmically(self, model):
        c8 = model.broadcast(1e6, 8)
        c64 = model.broadcast(1e6, 64)
        assert c64.messages == pytest.approx(c8.messages * 2)

    def test_alltoall_congestion_on_torus(self):
        torus_model = CollectiveModel.for_machine(BLUE_WATERS, nodes=256)
        tree_model = CollectiveModel.for_machine(STAMPEDE2, nodes=256)
        # relative to its own nearest-neighbour beta, the torus pays a larger
        # all-to-all penalty than the full-bisection fat tree
        torus_penalty = torus_model.beta("alltoall") / torus_model.beta("nearest")
        tree_penalty = tree_model.beta("alltoall") / tree_model.beta("nearest")
        assert torus_penalty >= tree_penalty

    def test_more_ranks_per_node_share_bandwidth(self):
        one = CollectiveModel.for_machine(STAMPEDE2, nodes=16, procs_per_node=1)
        many = CollectiveModel.for_machine(STAMPEDE2, nodes=16, procs_per_node=64)
        assert many.beta() > one.beta()

    @settings(max_examples=30, deadline=None)
    @given(nwords=st.floats(min_value=1.0, max_value=1e9),
           nprocs=st.integers(min_value=2, max_value=4096))
    def test_costs_monotone_in_message_size(self, nwords, nprocs):
        model = CollectiveModel.for_machine(BLUE_WATERS, nodes=max(nprocs // 16, 2))
        small = model.allreduce(nwords, nprocs)
        large = model.allreduce(2 * nwords, nprocs)
        assert large.seconds >= small.seconds
        assert large.words >= small.words

    @settings(max_examples=30, deadline=None)
    @given(nprocs=st.integers(min_value=2, max_value=2048))
    def test_bandwidth_term_bounded_by_full_volume(self, nprocs):
        """Ring algorithms never move more than the full buffer per rank."""
        model = CollectiveModel.for_machine(STAMPEDE2, nodes=max(nprocs // 64, 2))
        n = 1e7
        assert model.allgather(n, nprocs).words <= n
        assert model.reduce_scatter(n, nprocs).words <= n
