"""Tests for the pluggable block-operations layer (blockops seam).

The contract under test: swapping the kernel implementation (numpy vs
threaded, with or without the mixed-precision wrapper) changes wall-clock
and numerics only — the threaded path is *bit-identical* to numpy, the
modelled cost accounting (profiler seconds, plan statistics, layout-tracker
state) never sees the implementation, and a float32 warm-up run converges
to the float64 answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.symmetry import (BlockOps, BlockSparseTensor, Index,
                            MixedPrecisionOps, NumpyOps, ThreadedOps,
                            default_block_ops, make_block_ops, qr,
                            resolve_block_ops, svd)
from repro.symmetry.blockops import BLOCK_OPS_ENV


def random_pair(seed):
    """A contractable pair of randomized block tensors."""
    rng = np.random.default_rng(seed)
    i1 = Index([(0,), (1,)], [3, 4], flow=1)
    i2 = Index([(0,), (1,), (2,)], [2, 3, 2], flow=1)
    i3 = Index([(-1,), (0,), (1,), (2,)], [2, 3, 3, 2], flow=-1)
    i4 = Index([(0,), (1,), (2,)], [3, 2, 2], flow=-1)
    a = BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)
    b = BlockSparseTensor.random([i3.dual(), i4], flux=(0,), rng=rng)
    return a, b


def assert_tensors_identical(x, y):
    assert set(x.blocks) == set(y.blocks)
    for key, blk in x.blocks.items():
        np.testing.assert_array_equal(blk, y.blocks[key])


class TestResolution:
    def test_named_singletons(self):
        assert make_block_ops("numpy") is make_block_ops("numpy")
        assert make_block_ops("threaded") is make_block_ops("threaded")
        assert make_block_ops("numpy").name == "numpy"
        assert make_block_ops("threaded").name == "threaded"
        assert isinstance(make_block_ops("threaded"), ThreadedOps)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown block ops"):
            make_block_ops("cupy")

    def test_resolve_coercions(self):
        ops = ThreadedOps(max_workers=2)
        assert resolve_block_ops(ops) is ops
        assert resolve_block_ops("threaded") is make_block_ops("threaded")
        assert resolve_block_ops(None).name in ("numpy", "threaded",
                                                "process")
        with pytest.raises(TypeError):
            resolve_block_ops(42)

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(BLOCK_OPS_ENV, "threaded")
        assert default_block_ops().name == "threaded"
        monkeypatch.delenv(BLOCK_OPS_ENV)
        assert default_block_ops().name == "numpy"

    def test_numpy_alias_and_describe(self):
        assert NumpyOps is BlockOps
        d = make_block_ops("threaded").describe()
        assert d["name"] == "threaded" and d["parallel"]
        assert d["max_workers"] >= 1


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestThreadedBitIdentical:
    """threaded == numpy exactly, on randomized block tensors."""

    def test_contract(self, seed):
        a, b = random_pair(seed)
        res_np = a.contract(b, axes=([2], [0]), ops=make_block_ops("numpy"))
        res_th = a.contract(b, axes=([2], [0]),
                            ops=ThreadedOps(max_workers=4))
        assert_tensors_identical(res_np, res_th)

    def test_planned_backend_contract(self, seed):
        from repro.backends import DirectBackend
        a, b = random_pair(seed)
        res_np = DirectBackend(block_ops="numpy").contract(
            a, b, axes=([2], [0]))
        res_th = DirectBackend(
            block_ops=ThreadedOps(max_workers=4)).contract(
            a, b, axes=([2], [0]))
        assert_tensors_identical(res_np, res_th)

    def test_svd(self, seed):
        a, _ = random_pair(seed)
        u0, s0, vh0, _ = svd(a, [0, 1], ops=make_block_ops("numpy"))
        u1, s1, vh1, _ = svd(a, [0, 1], ops=ThreadedOps(max_workers=4))
        assert_tensors_identical(u0, u1)
        assert_tensors_identical(vh0, vh1)
        assert len(s0.values) == len(s1.values)
        for g0, g1 in zip(s0.values, s1.values):
            np.testing.assert_array_equal(np.asarray(g0), np.asarray(g1))

    def test_qr(self, seed):
        a, _ = random_pair(seed)
        q0, r0 = qr(a, [0, 1], ops=make_block_ops("numpy"))
        q1, r1 = qr(a, [0, 1], ops=ThreadedOps(max_workers=4))
        assert_tensors_identical(q0, q1)
        assert_tensors_identical(r0, r1)


class TestModelledCostsInvariant:
    """Plans, modelled seconds and tracker state never see the kernels."""

    @pytest.mark.parametrize("backend_name",
                             ["list", "sparse-dense", "sparse-sparse"])
    def test_dmrg_costs_bit_identical(self, backend_name):
        from repro.backends import make_backend
        from repro.ctf import BLUE_WATERS, SimWorld
        from repro.dmrg import DMRGConfig, Sweeps, dmrg
        from repro.models import heisenberg_chain_model
        from repro.mps import MPS, build_mpo

        lattice, sites, opsum, config_state = heisenberg_chain_model(8)
        mpo = build_mpo(opsum, sites, compress=True)
        psi0 = MPS.product_state(sites, config_state)
        sweeps = Sweeps.fixed(16, 3, cutoff=1e-10)
        out = {}
        for ops_name in ("numpy", "threaded"):
            world = SimWorld(nodes=4, procs_per_node=16,
                             machine=BLUE_WATERS)
            backend = make_backend(backend_name, world,
                                   block_ops=ops_name)
            res, _ = dmrg(mpo, psi0, DMRGConfig(sweeps=sweeps),
                          backend=backend,
                          rng=np.random.default_rng(9))
            out[ops_name] = (res.energy, world.modelled_seconds(),
                             world.layout_tracker.snapshot(),
                             res.plan_cache_hits, res.plan_cache_misses)
        e0, sec0, trk0, h0, m0 = out["numpy"]
        e1, sec1, trk1, h1, m1 = out["threaded"]
        assert e0 == e1              # bit-identical arithmetic
        assert sec0 == sec1          # modelled seconds bit-identical
        assert trk0 == trk1          # layout-tracker state bit-identical
        assert (h0, m0) == (h1, m1)  # plan statistics unchanged

    def test_compiled_matvec_identical(self):
        from repro.backends import DirectBackend
        from repro.dmrg import EffectiveHamiltonian
        from repro.perf.matvec_bench import heff_setup

        left, w1, w2, right, x = heff_setup(10, 12)
        ys = {}
        for ops_name in ("numpy", "threaded"):
            backend = DirectBackend(block_ops=ops_name)
            heff = EffectiveHamiltonian(left, w1, w2, right, backend,
                                        compile=True)
            ys[ops_name] = heff.apply(x)
            heff.release()
        assert (ys["numpy"] - ys["threaded"]).norm() == 0.0


class TestMixedPrecisionOps:
    def test_result_type_demotion(self):
        ops = MixedPrecisionOps(compute_dtype=np.float32)
        assert ops.result_type(np.float64) == np.float32
        assert ops.result_type(np.float32, np.float64) == np.float32
        assert ops.result_type(np.complex128) == np.complex64
        ops64 = MixedPrecisionOps(compute_dtype=np.float64)
        assert ops64.result_type(np.float64) == np.float64

    def test_prepare_downcasts(self):
        ops = MixedPrecisionOps(compute_dtype=np.float32)
        mat = np.ones((3, 3))
        assert ops.prepare(mat).dtype == np.float32
        f32 = np.ones((3, 3), dtype=np.float32)
        assert ops.prepare(f32) is f32  # already reduced: no copy

    def test_invalid_compute_dtype(self):
        with pytest.raises(ValueError):
            MixedPrecisionOps(compute_dtype=np.int32)

    def test_composes_with_threaded(self):
        base = ThreadedOps(max_workers=2)
        ops = MixedPrecisionOps(base, np.float32)
        assert ops.parallel
        assert ops.name == "threaded+mixed[float32]"
        assert ops.describe()["compute_dtype"] == "float32"

    def test_contract_runs_in_float32(self):
        a, b = random_pair(5)
        ops = MixedPrecisionOps(compute_dtype=np.float32)
        res = a.contract(b, axes=([2], [0]), ops=ops)
        assert res.dtype == np.float32
        ref = a.contract(b, axes=([2], [0]))
        assert (res.astype(np.float64) - ref).norm() < 1e-5 * max(
            1.0, ref.norm())


class TestDavidsonSubspaceDtype:
    def test_subspace_dtype_table(self):
        from repro.dmrg.davidson import _subspace_dtype
        assert _subspace_dtype(np.dtype(np.float32)) == np.float64
        assert _subspace_dtype(np.dtype(np.float64)) == np.float64
        assert _subspace_dtype(np.dtype(np.complex64)) == np.complex128
        assert _subspace_dtype(np.dtype(np.complex128)) == np.complex128


class TestMixedPrecisionDMRG:
    def test_warmup_matches_float64(self):
        from repro.backends import DirectBackend
        from repro.dmrg import DMRGConfig, Sweeps, dmrg
        from repro.models import heisenberg_chain_model
        from repro.mps import MPS, build_mpo

        lattice, sites, opsum, config_state = heisenberg_chain_model(8)
        mpo = build_mpo(opsum, sites, compress=True)
        psi0 = MPS.product_state(sites, config_state)
        sweeps = Sweeps.fixed(16, 4, cutoff=1e-10)

        dtypes_seen = []

        def hook(sweep_index, psi, result):
            dtypes_seen.append(
                np.result_type(*(t.dtype for t in psi.tensors)))

        backend = DirectBackend()
        base_ops = backend.block_ops
        res64, _ = dmrg(mpo, psi0, DMRGConfig(sweeps=sweeps),
                        backend=DirectBackend(),
                        rng=np.random.default_rng(2))
        res_mix, psi_mix = dmrg(
            mpo, psi0,
            DMRGConfig(sweeps=sweeps, warmup_dtype="float32",
                       warmup_sweeps=2, sweep_hook=hook),
            backend=backend, rng=np.random.default_rng(2))

        assert abs(res_mix.energy - res64.energy) < 1e-8
        # warm-up sweeps optimized in float32, polish back in float64
        assert dtypes_seen[0] == np.float32
        assert dtypes_seen[-1] == np.float64
        assert all(t.dtype == np.float64 for t in psi_mix.tensors)
        # the base kernels are restored after the run (whatever they were)
        assert backend.block_ops is base_ops


class TestCtfLinalgViaOps:
    def test_distributed_factorizations_route_through_ops(self):
        from repro.ctf import BLUE_WATERS, SimWorld
        from repro.ctf.linalg import (distributed_eigh, distributed_qr,
                                      distributed_svd)

        rng = np.random.default_rng(0)
        mat = rng.standard_normal((12, 8))
        world_a = SimWorld(nodes=1, procs_per_node=4, machine=BLUE_WATERS)
        world_b = SimWorld(nodes=1, procs_per_node=4, machine=BLUE_WATERS)
        u0, s0, v0 = distributed_svd(mat, world_a)
        u1, s1, v1 = distributed_svd(mat, world_b,
                                     ops=ThreadedOps(max_workers=2))
        np.testing.assert_array_equal(u0, u1)
        np.testing.assert_array_equal(s0, s1)
        np.testing.assert_array_equal(v0, v1)
        # modelled charge is independent of the ops implementation
        assert (world_a.modelled_seconds() == world_b.modelled_seconds())

        q0, r0 = distributed_qr(mat, world_a)
        q1, r1 = distributed_qr(mat, world_b, ops=make_block_ops("threaded"))
        np.testing.assert_array_equal(q0, q1)
        np.testing.assert_array_equal(r0, r1)

        sym = mat[:8] + mat[:8].T
        w0, v0 = distributed_eigh(sym, world_a)
        w1, v1 = distributed_eigh(sym, world_b,
                                  ops=make_block_ops("threaded"))
        np.testing.assert_array_equal(w0, w1)
        np.testing.assert_array_equal(v0, v1)


class TestRunSpecEngineFields:
    def test_defaults_keep_run_id(self):
        from repro.exp import RunSpec
        base = RunSpec.from_dict({"model": "heisenberg-chain"})
        explicit = RunSpec.from_dict({"model": "heisenberg-chain",
                                      "block_ops": "numpy",
                                      "mixed_precision": False})
        assert base.run_id == explicit.run_id
        assert "block_ops" not in base.canonical_json()
        assert "mixed_precision" not in base.canonical_json()

    def test_non_default_changes_run_id(self):
        from repro.exp import RunSpec
        base = RunSpec.from_dict({"model": "heisenberg-chain"})
        threaded = base.with_overrides(block_ops="threaded")
        mixed = base.with_overrides(mixed_precision=True)
        assert len({base.run_id, threaded.run_id, mixed.run_id}) == 3

    def test_roundtrip_and_validation(self):
        from repro.exp import RunSpec
        spec = RunSpec.from_dict({"model": "heisenberg-chain",
                                  "block_ops": "threaded",
                                  "mixed_precision": 1})
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec and again.run_id == spec.run_id
        assert spec.mixed_precision is True
        assert "ops=threaded" in spec.summary()
        with pytest.raises(ValueError, match="unknown block_ops"):
            RunSpec.from_dict({"model": "heisenberg-chain",
                               "block_ops": "gpu"})
