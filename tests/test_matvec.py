"""Tests for the compiled Davidson matvec (symmetry/matvec.py).

Covers the PR's acceptance contract: the compiled pipeline equals the naive
chained ``backend.contract`` path to 1e-12 across every backend and dtype,
arena buffer reuse never corrupts previously returned Davidson vectors, and
the compiled path replays the chained path's cost accounting (plan-cache
statistics, layout-tracker traffic, modelled seconds) exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (DirectBackend, ListBackend, SparseDenseBackend,
                            SparseSparseBackend)
from repro.ctf import BLUE_WATERS, SimWorld
from repro.dmrg import (DMRGConfig, EffectiveHamiltonian, Sweeps, davidson,
                        dmrg)
from repro.models import heisenberg_chain_model
from repro.mps import MPS, build_mpo
from repro.symmetry import BlockSparseTensor
from repro.symmetry.matvec import (MatvecCompiler, MatvecStage,
                                   WorkspaceArena)

DTYPES = [np.float32, np.float64, np.complex64, np.complex128]


def _cast(t: BlockSparseTensor, dtype) -> BlockSparseTensor:
    return BlockSparseTensor(
        t.indices, {k: v.astype(dtype) for k, v in t.blocks.items()},
        flux=t.flux, dtype=dtype, check=False)


def _heff_operands(nsites=8, maxdim=12, seed=3):
    from repro.perf.matvec_bench import heff_setup
    return heff_setup(nsites, maxdim, seed=seed)


def _backends():
    yield "direct", DirectBackend()
    world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
    yield "list", ListBackend(world)
    world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
    yield "sparse-dense", SparseDenseBackend(world)
    world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
    yield "sparse-sparse", SparseSparseBackend(world)


class TestCompiledMatvecEquality:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_compiled_equals_chained_all_backends(self, dtype):
        """Compiled pipeline == naive chained contract to 1e-12, all dtypes."""
        ops = _heff_operands()
        for name, backend in _backends():
            casted = [_cast(t, dtype) for t in ops]
            left, w1, w2, right, x = casted
            heff_plain = EffectiveHamiltonian(left, w1, w2, right,
                                              DirectBackend(), compile=False)
            heff_comp = EffectiveHamiltonian(left, w1, w2, right, backend,
                                             compile=True)
            y_ref = heff_plain.apply(x)
            y_trace = heff_comp.apply(x)      # traced (chained) application
            y_comp = heff_comp.apply(x)       # compiled application
            assert backend.matvec_counters.compiled_applies > 0, name
            assert y_comp.dtype == y_ref.dtype
            scale = max(y_ref.norm(), 1.0)
            assert (y_trace - y_ref).norm() <= 1e-12 * scale, (name, dtype)
            assert (y_comp - y_ref).norm() <= 1e-12 * scale, (name, dtype)
            heff_comp.release()

    def test_compiled_handles_changing_signatures(self):
        """Davidson residuals grow new blocks; each signature gets a program."""
        left, w1, w2, right, x = _heff_operands()
        backend = DirectBackend()
        heff = EffectiveHamiltonian(left, w1, w2, right, backend)
        y = heff.apply(x)            # traced for x's signature
        z = heff.apply(y)            # y usually has more blocks: new trace
        z2 = heff.apply(y)           # now compiled
        ref = EffectiveHamiltonian(left, w1, w2, right, DirectBackend(),
                                   compile=False)
        assert (z2 - ref.apply(y)).norm() <= 1e-12 * max(z.norm(), 1.0)
        heff.release()
        assert backend.matvec_counters.releases >= 1

    def test_davidson_through_compiled_heff_matches(self):
        left, w1, w2, right, x = _heff_operands()
        res_comp = davidson(
            EffectiveHamiltonian(left, w1, w2, right, DirectBackend()),
            x, max_iterations=3, rng=np.random.default_rng(0))
        res_ref = davidson(
            EffectiveHamiltonian(left, w1, w2, right, DirectBackend(),
                                 compile=False),
            x, max_iterations=3, rng=np.random.default_rng(0))
        assert res_comp.eigenvalue == pytest.approx(res_ref.eigenvalue,
                                                    abs=1e-10)

    def test_naive_backend_falls_back_to_chained(self):
        """No plan cache -> no compilation, plain Algorithm-2 semantics."""
        left, w1, w2, right, x = _heff_operands()
        backend = DirectBackend(use_planner=False)
        heff = EffectiveHamiltonian(left, w1, w2, right, backend)
        heff.apply(x)
        heff.apply(x)
        assert backend.matvec_counters.compiles == 0
        assert backend.matvec_counters.traced_applies == 2

    def test_sparse_execution_mode_refuses_compilation(self):
        world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        backend = SparseSparseBackend(world, execute_sparse=True)
        assert not backend.supports_compiled_matvec()
        backend_plain = SparseSparseBackend(world)
        assert backend_plain.supports_compiled_matvec()


class TestAliasingSafety:
    def test_arena_reuse_never_corrupts_previous_results(self):
        """Compiled outputs own their memory: later matvecs leave them alone."""
        left, w1, w2, right, x = _heff_operands()
        backend = DirectBackend()
        heff = EffectiveHamiltonian(left, w1, w2, right, backend)
        heff.apply(x)                       # trace
        y1 = heff.apply(x)                  # compiled
        frozen = {k: v.copy() for k, v in y1.blocks.items()}
        rng = np.random.default_rng(9)
        for _ in range(4):
            x2 = BlockSparseTensor(
                x.indices,
                {k: rng.standard_normal(v.shape) for k, v in x.blocks.items()},
                flux=x.flux, check=False)
            y2 = heff.apply(x2)
            for key, blk in y2.blocks.items():
                if key in y1.blocks:
                    assert not np.shares_memory(blk, y1.blocks[key])
        for key, blk in frozen.items():
            np.testing.assert_array_equal(y1.blocks[key], blk)

    def test_davidson_basis_survives_many_compiled_matvecs(self):
        """The h_basis vectors retained by Davidson stay bit-identical."""
        left, w1, w2, right, x = _heff_operands()
        heff = EffectiveHamiltonian(left, w1, w2, right, DirectBackend())
        heff.apply(x)                       # trace x's signature
        outputs = []
        copies = []
        for scale in (1.0, 2.0, -0.5, 3.0):
            y = heff.apply(x * scale)
            outputs.append(y)
            copies.append({k: v.copy() for k, v in y.blocks.items()})
        for y, frozen in zip(outputs, copies):
            for key, blk in frozen.items():
                np.testing.assert_array_equal(y.blocks[key], blk)

    def test_release_returns_buffers_to_pool(self):
        left, w1, w2, right, x = _heff_operands()
        backend = DirectBackend()
        heff = EffectiveHamiltonian(left, w1, w2, right, backend)
        heff.apply(x)
        arena = backend.workspace_arena
        acquired_before_release = arena.acquires
        assert acquired_before_release > 0
        heff.release()
        snap = arena.snapshot()
        assert snap["releases"] == acquired_before_release
        assert snap["pooled_buffers"] > 0
        # a new bond with the same shapes recycles the pooled buffers
        heff2 = EffectiveHamiltonian(left, w1, w2, right, backend)
        heff2.apply(x)
        assert arena.reuses > 0
        heff2.release()


class TestWorkspaceArena:
    def test_acquire_reuses_released_buffers(self):
        arena = WorkspaceArena()
        a = arena.acquire((4, 6), np.float64)
        a[...] = 1.0
        arena.release(a)
        b = arena.acquire((6, 4), np.float64)   # same size, new shape
        assert arena.reuses == 1
        assert np.shares_memory(a, b)
        c = arena.acquire((4, 6), np.float32)   # different dtype: fresh
        assert not np.shares_memory(b, c)
        assert arena.snapshot()["acquires"] == 3

    def test_pool_is_bounded(self):
        arena = WorkspaceArena(max_pool_per_key=2)
        bufs = [arena.acquire((8,), np.float64) for _ in range(5)]
        for buf in bufs:
            arena.release(buf)
        assert arena.snapshot()["pooled_buffers"] == 2

    def test_double_release_raises(self):
        # once programs and the sweep driver share one arena, releasing the
        # same buffer twice would pool it twice and hand the bytes to two
        # live holders — the guard must catch it at the second release
        arena = WorkspaceArena()
        a = arena.acquire((4, 4), np.float64)
        arena.release(a)
        with pytest.raises(ValueError, match="double release"):
            arena.release(a)
        # a release of a view over the same bytes is the same hazard
        b = arena.acquire((4, 4), np.float64)   # reuse: un-pools the buffer
        assert np.shares_memory(a, b)
        arena.release(b)
        with pytest.raises(ValueError, match="double release"):
            arena.release(b.reshape(16))
        # clear() empties the pool; the old buffer can be released again
        # without tripping the guard once it is genuinely outside the pool
        arena.clear()
        assert arena.snapshot()["pooled_buffers"] == 0
        arena.release(b)
        assert arena.snapshot()["pooled_buffers"] == 1


class TestCostAccountingParity:
    def test_plan_cache_stats_identical(self):
        lattice, sites, opsum, cs = heisenberg_chain_model(8)
        mpo = build_mpo(opsum, sites, compress=True)
        psi0 = MPS.product_state(sites, cs)
        sweeps = Sweeps.fixed(16, 3, cutoff=1e-10)
        res_on, _ = dmrg(mpo, psi0, DMRGConfig(sweeps=sweeps),
                         backend=DirectBackend(),
                         rng=np.random.default_rng(1))
        res_off, _ = dmrg(mpo, psi0,
                          DMRGConfig(sweeps=sweeps, compile_matvec=False),
                          backend=DirectBackend(),
                          rng=np.random.default_rng(1))
        assert res_on.energy == pytest.approx(res_off.energy, abs=1e-10)
        assert res_on.plan_cache_hits == res_off.plan_cache_hits
        assert res_on.plan_cache_misses == res_off.plan_cache_misses
        for r_on, r_off in zip(res_on.sweep_records, res_off.sweep_records):
            assert (r_on.plan_hits, r_on.plan_misses) == \
                (r_off.plan_hits, r_off.plan_misses)

    def test_layout_tracker_and_modelled_time_identical(self):
        """The compiled path replays the exact cost-model charge sequence."""
        from repro.perf.matvec_bench import run_matvec_layout_check
        stats = run_matvec_layout_check(nsites=8, maxdim=16, nsweeps=3)
        assert stats["tracker_equal"]
        assert stats["modelled_seconds_delta"] < 1e-12
        assert stats["energy_delta"] < 1e-10
        assert stats["layout_reuses"] > 0

    def test_sweep_records_carry_layout_counts(self):
        lattice, sites, opsum, cs = heisenberg_chain_model(6)
        mpo = build_mpo(opsum, sites, compress=True)
        psi0 = MPS.product_state(sites, cs)
        world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        res, _ = dmrg(mpo, psi0,
                      DMRGConfig(sweeps=Sweeps.fixed(12, 2, cutoff=1e-10)),
                      backend=SparseSparseBackend(world),
                      rng=np.random.default_rng(2))
        assert res.layout_moves > 0
        assert res.layout_reuses > 0
        assert res.layout_moves == sum(r.layout_moves
                                       for r in res.sweep_records)
        assert res.layout_reuses == sum(r.layout_reuses
                                        for r in res.sweep_records)
        assert 0.0 < res.layout_reuse_rate < 1.0
        # a cost-model-free backend reports zeros
        res_plain, _ = dmrg(mpo, psi0,
                            DMRGConfig(sweeps=Sweeps.fixed(12, 2,
                                                           cutoff=1e-10)),
                            backend=DirectBackend(),
                            rng=np.random.default_rng(2))
        assert res_plain.layout_moves == 0
        assert res_plain.layout_reuses == 0

    def test_mapping_counts_match_chained_path(self):
        """The list backend's per-pair 2D/3D tallies are preserved."""
        ops = _heff_operands()
        left, w1, w2, right, x = ops
        world_a = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        backend_a = ListBackend(world_a)
        heff_a = EffectiveHamiltonian(left, w1, w2, right, backend_a,
                                      compile=False)
        heff_a.apply(x)
        heff_a.apply(x)
        world_b = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        backend_b = ListBackend(world_b)
        heff_b = EffectiveHamiltonian(left, w1, w2, right, backend_b,
                                      compile=True)
        heff_b.apply(x)
        heff_b.apply(x)
        assert backend_a.mapping_counts == backend_b.mapping_counts
        assert abs(world_a.modelled_seconds()
                   - world_b.modelled_seconds()) < 1e-12
        heff_b.release()


class TestPlanCacheExtensions:
    def test_peek_does_not_count_lookups(self):
        from repro.symmetry import Index, PlanCache
        rng = np.random.default_rng(0)
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        a = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng)
        b = BlockSparseTensor.random([i2.dual(), i1.dual()], flux=(0,),
                                     rng=rng)
        cache = PlanCache(record_global=False)
        assert cache.peek(a, b, ([1], [0])) is None
        plan = cache.lookup(a, b, ([1], [0]))
        assert cache.peek(a, b, ([1], [0])) is plan
        assert (cache.hits, cache.misses) == (0, 1)

    def test_record_hits_updates_statistics(self):
        from repro.symmetry import PlanCache
        cache = PlanCache(record_global=False)
        cache.record_hits(4)
        assert cache.hits == 4
        assert cache.hit_rate == 1.0


class TestDavidsonAlgebraCharge:
    def test_world_charges_axpy_traffic(self):
        world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        seconds = world.charge_davidson_algebra(10_000, naxpy=12, ndot=20)
        assert seconds > 0
        snap = world.profiler.as_dict()
        assert snap["davidson"] > 0
        assert snap["communication"] > 0       # inner-product allreduces
        assert world.charge_davidson_algebra(0, naxpy=3, ndot=3) == 0.0
        assert world.charge_davidson_algebra(100) == 0.0

    def test_davidson_solve_charges_the_world(self):
        left, w1, w2, right, x = _heff_operands()
        world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        backend = SparseSparseBackend(world)
        heff = EffectiveHamiltonian(left, w1, w2, right, backend)
        davidson(heff, x, max_iterations=2, rng=np.random.default_rng(0))
        heff.release()
        assert world.profiler.as_dict().get("davidson", 0.0) > 0
        # percentages still sum to 100 with the custom category present
        assert sum(world.profiler.breakdown().values()) == \
            pytest.approx(100.0, abs=1e-6)

    def test_model_twin_includes_davidson_category(self):
        from repro.perf import (davidson_vector_ops, get_system,
                                model_dmrg_step)
        naxpy, ndot = davidson_vector_ops(2)
        assert naxpy > 0 and ndot > 0
        system = get_system("spins", small=True)
        world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        step = model_dmrg_step(system, 64, world, "sparse-sparse")
        assert "davidson" in step.breakdown
        assert step.breakdown["davidson"] > 0
        assert sum(step.breakdown.values()) == pytest.approx(step.seconds,
                                                             abs=1e-9)


class TestMatvecCompilerInternals:
    def test_stage_list_matches_chain(self):
        left, w1, w2, right, x = _heff_operands()
        heff = EffectiveHamiltonian(left, w1, w2, right, DirectBackend(),
                                    site=3)
        stages = heff.stages()
        assert len(stages) == 4
        assert [s.static_side for s in stages] == ["a", "b", "b", "b"]
        assert stages[0].operand_keys[0] == "env:L3"
        assert stages[3].operand_keys[1] == "env:R4"
        assert all(s.out_key.startswith("dav:3:h") for s in stages)

    def test_compiler_counts_programs(self):
        left, w1, w2, right, x = _heff_operands()
        backend = DirectBackend()
        compiler = MatvecCompiler(
            backend,
            EffectiveHamiltonian(left, w1, w2, right, backend).stages())
        compiler.apply(x)
        assert compiler.programs == 1
        compiler.apply(x)
        compiler.release()
        assert compiler.programs == 0
