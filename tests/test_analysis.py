"""Tests for the static correctness layer (:mod:`repro.analysis`).

Three groups, one per pass:

* **schedule** — extent-overlap geometry, happens-before replay, seeded
  defects (a traced schedule mutated so two concurrent write extents
  overlap must be reported with the exact job pair), and the online shadow
  checker raising at submit time;
* **aliasing** — a real compiled program verifies clean, and seeded defects
  (a destination view aliased onto a live input, an arena buffer reissued
  while live) are reported with exact stage/unit coordinates;
* **lint** — fixture files exercising every rule in the catalogue plus the
  pragma suppression path, and the gate itself: ``src/repro`` lints clean.
"""

from __future__ import annotations

import itertools
import textwrap

import numpy as np
import pytest

from repro.analysis import (Extent, ScheduleRaceError, ScheduleTrace,
                            check_trace, extents_overlap, run_lint,
                            verify_program)
from repro.analysis.schedule import JobAccess, _payload_extents


# --------------------------------------------------------------------------- #
# schedule: extent geometry
# --------------------------------------------------------------------------- #

def _extent(offset, shape, strides, itemsize=8, segment="seg"):
    return Extent(segment=segment, offset=offset, shape=tuple(shape),
                  strides=tuple(strides), itemsize=itemsize)


class TestExtentOverlap:
    """Exact strided-byte-range intersection."""

    def test_disjoint_row_slices(self):
        # rows [0:2) and [2:4) of a C-contiguous (4, 8) float64 matrix
        a = _extent(0, (2, 8), (64, 8))
        b = _extent(128, (2, 8), (64, 8))
        assert not extents_overlap(a, b)

    def test_same_bytes(self):
        a = _extent(0, (4, 8), (64, 8))
        assert extents_overlap(a, a)

    def test_interleaved_columns_do_not_overlap(self):
        # even vs odd columns of an (8, 8) matrix: spans overlap but the
        # contiguous runs interleave without touching
        even = _extent(0, (8, 4), (64, 16))
        odd = _extent(8, (8, 4), (64, 16))
        assert not extents_overlap(even, odd)

    def test_transposed_view_overlaps_itself(self):
        plain = _extent(0, (4, 8), (64, 8))
        transposed = _extent(0, (8, 4), (8, 64))
        assert extents_overlap(plain, transposed)

    def test_different_segments_never_overlap(self):
        a = _extent(0, (4, 8), (64, 8), segment="s1")
        b = _extent(0, (4, 8), (64, 8), segment="s2")
        assert not extents_overlap(a, b)

    def test_descriptor_roundtrip(self):
        desc = ("shm", "seg", 64, (3, 5), (40, 8), "<f8")
        e = Extent.from_descriptor(desc)
        assert e is not None
        assert e.span() == (64, 64 + 2 * 40 + 4 * 8 + 8)
        assert Extent.from_descriptor(("arr", np.zeros(3))) is None


# --------------------------------------------------------------------------- #
# schedule: happens-before replay + seeded defects
# --------------------------------------------------------------------------- #

def _gemm_access(job_id, out_offset, rows=2, row_bytes=64, segment="seg"):
    """A gemm job writing ``rows`` C-contiguous rows at ``out_offset``."""
    payload = (("arr", None), ("arr", None),
               ("shm", segment, out_offset, (rows, row_bytes // 8),
                (row_bytes, 8), "<f8"))
    reads, writes = _payload_extents("gemm", payload)
    return JobAccess(job_id, "gemm", reads, writes)


class TestScheduleReplay:
    """Offline replay of traced executor schedules."""

    def test_disjoint_group_is_clean(self):
        # a row-split group: three jobs, disjoint output rows, barrier after
        events = [("submit", _gemm_access(1, 0)),
                  ("submit", _gemm_access(2, 128)),
                  ("submit", _gemm_access(3, 256)),
                  ("complete", 1), ("complete", 2), ("complete", 3)]
        report = check_trace(events)
        assert report.ok
        assert report.jobs == 3 and report.pairs_checked == 3

    def test_mutated_overlapping_writes_name_the_exact_pair(self):
        # seeded defect: job 3's write extent mutated to overlap job 2's
        events = [("submit", _gemm_access(1, 0)),
                  ("submit", _gemm_access(2, 128)),
                  ("submit", _gemm_access(3, 160)),
                  ("complete", 1), ("complete", 2), ("complete", 3)]
        report = check_trace(events)
        assert not report.ok
        (finding,) = report.findings
        assert finding.kind == "write-write"
        assert {finding.job_a, finding.job_b} == {2, 3}
        assert "job 2" in finding.render() and "job 3" in finding.render()

    def test_completion_orders_the_same_extent(self):
        # same bytes written twice is fine when the first completion is
        # observed before the second submit (happens-before edge)
        events = [("submit", _gemm_access(1, 0)), ("complete", 1),
                  ("submit", _gemm_access(2, 0)), ("complete", 2)]
        assert check_trace(events).ok

    def test_read_write_conflict(self):
        write = _gemm_access(1, 0)
        reader_payload = (("shm", "seg", 0, (2, 8), (64, 8), "<f8"),
                          ("arr", None), None)
        reads, writes = _payload_extents("gemm", reader_payload)
        events = [("submit", write),
                  ("submit", JobAccess(2, "gemm", reads, writes)),
                  ("complete", 1), ("complete", 2)]
        report = check_trace(events)
        assert not report.ok
        assert report.findings[0].kind == "read-write"

    def test_reuse_in_flight_is_reported(self):
        events = [("submit", _gemm_access(7, 0)),
                  ("reuse", _extent(0, (16,), (8,))),
                  ("complete", 7)]
        report = check_trace(events)
        assert not report.ok
        (finding,) = report.findings
        assert finding.kind == "reuse-in-flight" and finding.job_a == 7

    def test_reuse_after_completion_is_clean(self):
        events = [("submit", _gemm_access(7, 0)), ("complete", 7),
                  ("reuse", _extent(0, (16,), (8,)))]
        assert check_trace(events).ok


class TestShadowChecker:
    """Online mode: conflicts raise at the moment of the bad event."""

    def test_conflicting_submit_raises(self):
        trace = ScheduleTrace(shadow=True)
        a = _gemm_access(1, 0)
        b = _gemm_access(2, 32)  # overlaps job 1's rows
        trace.record_submit(a.job_id, "gemm",
                            (("arr", None), ("arr", None),
                             ("shm", "seg", 0, (2, 8), (64, 8), "<f8")))
        with pytest.raises(ScheduleRaceError, match="job 1"):
            trace.record_submit(b.job_id, "gemm",
                                (("arr", None), ("arr", None),
                                 ("shm", "seg", 32, (2, 8), (64, 8), "<f8")))

    def test_ordered_submits_pass(self):
        trace = ScheduleTrace(shadow=True)
        payload = (("arr", None), ("arr", None),
                   ("shm", "seg", 0, (2, 8), (64, 8), "<f8"))
        trace.record_submit(1, "gemm", payload)
        trace.record_complete(1)
        trace.record_submit(2, "gemm", payload)  # ordered: no raise
        assert trace.snapshot().ok


def test_live_executor_trace_is_race_free():
    """A real traced schedule (workers, row-splits, scratch reuse) is clean."""
    from repro.analysis import trace_executor_schedule

    report = trace_executor_schedule(nsites=6, maxdim=8, applies=2)
    assert report.ok, report.render()
    assert report.shm_jobs > 0 and report.pairs_checked > 0


# --------------------------------------------------------------------------- #
# aliasing: real programs + seeded defects
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def compiled_program():
    """A freshly compiled effective-Hamiltonian matvec program."""
    from repro.backends.base import DirectBackend
    from repro.dmrg import EffectiveHamiltonian
    from repro.perf.matvec_bench import heff_setup

    left, w1, w2, right, x = heff_setup(6, 8)
    heff = EffectiveHamiltonian(left, w1, w2, right, DirectBackend(),
                                compile=True)
    heff.apply(x)
    heff.apply(x)
    (program,) = heff._get_compiler().iter_programs()
    yield program
    heff.release()


class TestAliasingVerifier:
    """Liveness analysis over compiled program stages."""

    def test_real_program_verifies_clean(self, compiled_program):
        report = verify_program(compiled_program)
        assert report.ok, report.render()
        assert report.stages >= 2 and report.units_checked > 0
        assert report.buffers_checked == \
            len(compiled_program.owned_buffers())

    def test_aliased_destination_names_exact_stage_and_unit(
            self, compiled_program):
        # seeded defect: point one GEMM's destination at a live input of
        # its own stage, then restore the program afterwards
        stage_idx, stage = next(
            (i, st) for i, st in enumerate(compiled_program.stages)
            if not st.is_final and st.units)
        unit_idx = len(stage.units) - 1
        kind, lhs, rhs, _ = stage.units[unit_idx]
        victim = next(arr for ref in (lhs, rhs)
                      for arr in [ref[1] if ref[0] == "c"
                                  else stage.dmats[ref[1]]]
                      if arr is not None)
        saved = stage.units[unit_idx]
        stage.units[unit_idx] = (kind, lhs, rhs, victim)
        try:
            report = verify_program(compiled_program)
        finally:
            stage.units[unit_idx] = saved
        assert not report.ok
        hits = [f for f in report.findings
                if f.stage == stage_idx and f.unit == unit_idx]
        assert hits, report.render()
        assert any(f.rule in ("out-aliases-input", "live-input-overlap",
                              "out-overlap") for f in hits)

    def test_reissued_arena_buffer_is_reported(self, compiled_program):
        # seeded defect: the arena hands the same buffer out twice
        owned = compiled_program._owned
        if not owned:
            pytest.skip("program owns no arena buffers at this size")
        owned.append(owned[0])
        try:
            report = verify_program(compiled_program)
        finally:
            owned.pop()
        assert not report.ok
        assert any(f.rule == "arena-reissue" for f in report.findings)

    def test_refresh_ops_counted_and_clean(self, compiled_program):
        report = verify_program(compiled_program)
        assert report.ok, report.render()
        assert report.refresh_ops_checked > 0
        assert report.refresh_ops_checked == sum(
            len(st.refreshes) for st in compiled_program.stages)

    def test_tampered_refresh_destination_names_exact_stage(
            self, compiled_program):
        # seeded defect: point one static-refresh view at memory outside
        # the arena buffer it claims to write, then restore the program
        stage_idx, stage, ri = next(
            (i, st, k) for i, st in enumerate(compiled_program.stages)
            for k in range(len(st.refreshes)))
        dst, key, perm, owner = stage.refreshes[ri]
        stage.refreshes[ri] = (np.empty_like(dst), key, perm, owner)
        try:
            report = verify_program(compiled_program)
        finally:
            stage.refreshes[ri] = (dst, key, perm, owner)
        assert not report.ok
        hits = [f for f in report.findings
                if f.rule == "refresh-aliases-live"
                and f.stage == stage_idx and f.unit == ri]
        assert hits, report.render()

    def test_refresh_into_foreign_live_buffer_is_reported(
            self, compiled_program):
        # seeded defect: a refresh destination rewired into arena bytes a
        # *different* live buffer owns — the hazard the sweep-persistent
        # cache introduces if a stale view survives a retrace
        stage_idx, stage, ri = next(
            (i, st, k) for i, st in enumerate(compiled_program.stages)
            for k in range(len(st.refreshes)))
        dst, key, perm, owner = stage.refreshes[ri]
        foreign = next((b for b in compiled_program.owned_buffers()
                        if b is not owner and b.size >= dst.size), None)
        if foreign is None:
            pytest.skip("no second arena buffer large enough at this size")
        bad = foreign.reshape(-1)[:dst.size].reshape(dst.shape)
        stage.refreshes[ri] = (bad, key, perm, owner)
        try:
            report = verify_program(compiled_program)
        finally:
            stage.refreshes[ri] = (dst, key, perm, owner)
        assert not report.ok
        assert any(f.rule == "refresh-aliases-live" and f.stage == stage_idx
                   for f in report.findings), report.render()

    def test_final_stage_tiling_defect(self, compiled_program):
        # seeded defect: shift a final-stage output slice onto its neighbor
        final = compiled_program.stages[-1]
        assert final.is_final
        if len(final.units) < 2:
            pytest.skip("final stage has a single unit at this size")
        kind, lhs, rhs, (off, shape) = final.units[1]
        saved = final.units[1]
        final.units[1] = (kind, lhs, rhs, (final.units[0][3][0], shape))
        try:
            report = verify_program(compiled_program)
        finally:
            final.units[1] = saved
        assert any(f.rule == "final-overlap" for f in report.findings)


# --------------------------------------------------------------------------- #
# lint: fixtures for every rule + the pragma path
# --------------------------------------------------------------------------- #

_FIXTURE_SEQ = itertools.count()


def _lint_source(tmp_path, source, name="fixture.py", subdir=None):
    """Write a fixture file into a fresh root and lint it (root-relative)."""
    root = tmp_path / f"pkg{next(_FIXTURE_SEQ)}"
    target = root if subdir is None else root / subdir
    target.mkdir(parents=True, exist_ok=True)
    (target / name).write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(root=root)


class TestLintRules:
    """One fixture per rule in the catalogue."""

    def test_blockops_route(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            def f(a, b):
                np.matmul(a, b)
                np.tensordot(a, b, axes=1)
                np.linalg.svd(a)
                np.linalg.qr(a)
                np.linalg.eigh(a)
        """)
        assert sum(1 for f in report.findings
                   if f.rule == "blockops-route") == 5

    def test_blockops_route_allowed_in_kernel_home(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            def f(a, b):
                return np.matmul(a, b)
        """, name="blockops.py", subdir="symmetry")
        assert report.ok

    def test_seeded_rng(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            r1 = np.random.default_rng()
            r2 = np.random.RandomState()
            x = np.random.rand(3)
            ok = np.random.default_rng(7)
        """)
        assert sum(1 for f in report.findings
                   if f.rule == "seeded-rng") == 3

    def test_profiler_category(self, tmp_path):
        report = _lint_source(tmp_path, """
            def f(prof):
                prof.add("warp-drive", 1.0)
                prof.add("gemm", 1.0)
                prof.add("warp-drive", 1.0, allow_custom=True)
        """)
        hits = [f for f in report.findings if f.rule == "profiler-category"]
        assert len(hits) == 1 and hits[0].line == 3

    def test_shm_lifecycle(self, tmp_path):
        bad = _lint_source(tmp_path, """
            from multiprocessing.shared_memory import SharedMemory
            def f():
                return SharedMemory(create=True, size=64)
        """)
        assert any(f.rule == "shm-lifecycle" for f in bad.findings)
        good = _lint_source(tmp_path, """
            from multiprocessing.shared_memory import SharedMemory
            def f():
                seg = SharedMemory(create=True, size=64)
                seg.unlink()
                seg.close()
        """)
        assert good.ok

    def test_docstrings_scoped_to_documented_packages(self, tmp_path):
        bad = _lint_source(tmp_path, """
            def public():
                pass
        """, subdir="ctf")
        rules = {f.rule for f in bad.findings}
        assert "docstrings" in rules  # module + function both lack one
        elsewhere = _lint_source(tmp_path, """
            def public():
                pass
        """, subdir="mps")
        assert elsewhere.ok

    def test_pragma_suppresses_with_reason(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            def f(a, b):
                return np.matmul(a, b)  # repro-lint: ok(blockops-route): fixture exercising the pragma path
        """)
        assert report.ok and report.suppressed == 1

    def test_pragma_without_reason_is_a_finding(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            def f(a, b):
                return np.matmul(a, b)  # repro-lint: ok(blockops-route)
        """)
        assert not report.ok
        assert all(f.rule == "pragma-reason" for f in report.findings)

    def test_pragma_for_wrong_rule_does_not_suppress(self, tmp_path):
        report = _lint_source(tmp_path, """
            import numpy as np
            def f(a, b):
                return np.matmul(a, b)  # repro-lint: ok(seeded-rng): wrong rule on purpose
        """)
        assert any(f.rule == "blockops-route" for f in report.findings)


def test_repo_lints_clean():
    """The gate itself: ``src/repro`` has no unsuppressed violations."""
    report = run_lint()
    assert report.ok, "\n".join(f.render() for f in report.findings)
    assert report.files_checked > 50


def test_profiler_categories_in_sync():
    """The linter's canonical category set tracks the profiler's."""
    from repro.analysis.lint import _CANONICAL_CATEGORIES
    from repro.ctf.profiler import CATEGORIES

    assert tuple(_CANONICAL_CATEGORIES) == tuple(CATEGORIES)


# --------------------------------------------------------------------------- #
# shm extents (satellite: explicit (slab_id, offset, nbytes) handles)
# --------------------------------------------------------------------------- #

class TestShmExtents:
    """Exact allocation extents recorded and bounds-checked at carve time."""

    def test_extent_of_reports_exact_ranges(self):
        from repro.ctf.shm import ShmArena

        arena = ShmArena()
        try:
            a = arena.allocate((16,), np.float64)
            b = arena.allocate((16,), np.float64)
            ea, eb = arena.extent_of(a), arena.extent_of(b)
            assert ea is not None and eb is not None
            assert ea[2] == eb[2] == 16 * 8
            # same slab, disjoint byte ranges
            assert ea[0] == eb[0]
            lo_a, hi_a = ea[1], ea[1] + ea[2]
            lo_b, hi_b = eb[1], eb[1] + eb[2]
            assert hi_a <= lo_b or hi_b <= lo_a
            # any view maps to its root allocation's extent
            assert arena.extent_of(a.reshape(4, 4)[1:, :2]) == ea
            assert arena.extent_of(np.zeros(4)) is None
        finally:
            arena.release_all()

    def test_descriptor_offsets_stay_within_extent(self):
        from repro.analysis.schedule import Extent
        from repro.ctf.shm import ShmArena

        arena = ShmArena()
        try:
            a = arena.allocate((8, 8), np.float64)
            view = a[2:5, ::2]
            desc = arena.describe(view)
            extent = Extent.from_descriptor(desc)
            name, offset, nbytes = arena.extent_of(a)
            lo, hi = extent.span()
            assert extent.segment == name
            assert offset <= lo and hi <= offset + nbytes
        finally:
            arena.release_all()
