"""Unit tests for MPS, MPO, AutoMPO and MPO compression."""

import numpy as np
import pytest

from repro.ed import build_hamiltonian
from repro.models import (heisenberg_chain_model, hubbard_chain_model,
                          triangular_hubbard_model, tfim_model)
from repro.mps import MPS, SiteSet, SpinHalfSite, build_mpo, overlap
from repro.mps.mps import bond_structure


@pytest.fixture(scope="module")
def heis6():
    lat, sites, opsum, config = heisenberg_chain_model(6)
    return sites, opsum, config, build_mpo(opsum, sites)


class TestMPS:
    def test_product_state(self):
        sites = SiteSet.uniform(SpinHalfSite(), 4)
        psi = MPS.product_state(sites, ["Up", "Dn", "Up", "Dn"])
        assert psi.norm() == pytest.approx(1.0)
        assert psi.bond_dimensions() == [1, 1, 1]
        assert psi.total_charge() == (0,)

    def test_product_state_dense_vector(self):
        sites = SiteSet.uniform(SpinHalfSite(), 3)
        psi = MPS.product_state(sites, ["Up", "Dn", "Up"])
        vec = psi.to_dense_vector()
        # basis index of (Up, Dn, Up) = 0*4 + 1*2 + 0 = 2
        assert vec[2] == pytest.approx(1.0)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_invalid_config_length(self):
        sites = SiteSet.uniform(SpinHalfSite(), 3)
        with pytest.raises(ValueError):
            MPS.product_state(sites, ["Up", "Dn"])

    def test_random_mps_norm_and_charge(self, rng):
        sites = SiteSet.uniform(SpinHalfSite(), 8)
        psi = MPS.random(sites, total_charge=(0,), bond_dim=10, rng=rng)
        assert psi.norm() == pytest.approx(1.0)
        assert psi.total_charge() == (0,)
        assert psi.max_bond_dimension() <= 10 + 2

    def test_random_mps_nonzero_charge(self, rng):
        sites = SiteSet.uniform(SpinHalfSite(), 6)
        psi = MPS.random(sites, total_charge=(2,), bond_dim=6, rng=rng)
        assert psi.total_charge() == (2,)
        assert psi.expect_one_site("Sz", 0).real == pytest.approx(
            psi.expect_one_site("Sz", 0).real)

    def test_canonicalize_preserves_state(self, rng):
        sites = SiteSet.uniform(SpinHalfSite(), 6)
        psi = MPS.random(sites, total_charge=(0,), bond_dim=8, rng=rng)
        vec = psi.to_dense_vector()
        psi.canonicalize(3)
        assert np.allclose(np.abs(psi.to_dense_vector()), np.abs(vec))
        assert psi.center == 3

    def test_move_center(self, rng):
        sites = SiteSet.uniform(SpinHalfSite(), 6)
        psi = MPS.random(sites, total_charge=(0,), bond_dim=8, rng=rng)
        psi.canonicalize(0)
        vec = psi.to_dense_vector()
        psi.move_center(4)
        assert psi.center == 4
        assert np.allclose(psi.to_dense_vector(), vec)

    def test_overlap_of_orthogonal_product_states(self):
        sites = SiteSet.uniform(SpinHalfSite(), 4)
        a = MPS.product_state(sites, ["Up", "Dn", "Up", "Dn"])
        b = MPS.product_state(sites, ["Dn", "Up", "Dn", "Up"])
        assert abs(overlap(a, b)) < 1e-14
        assert overlap(a, a) == pytest.approx(1.0)

    def test_expect_one_site(self):
        sites = SiteSet.uniform(SpinHalfSite(), 4)
        psi = MPS.product_state(sites, ["Up", "Dn", "Up", "Dn"])
        assert complex(psi.expect_one_site("Sz", 0)).real == pytest.approx(0.5)
        assert complex(psi.expect_one_site("Sz", 1)).real == pytest.approx(-0.5)
        # S+ changes the charge sector -> zero expectation value
        assert abs(complex(psi.expect_one_site("S+", 1))) < 1e-14

    def test_entanglement_entropy_product_state(self):
        sites = SiteSet.uniform(SpinHalfSite(), 4)
        psi = MPS.product_state(sites, ["Up", "Dn", "Up", "Dn"])
        assert psi.entanglement_entropy(1) == pytest.approx(0.0, abs=1e-12)

    def test_bond_structure_edges(self):
        sites = SiteSet.uniform(SpinHalfSite(), 6)
        bonds = bond_structure(sites, (0,), 16)
        assert bonds[0].dim == 1
        assert bonds[-1].dim == 1
        # middle bond limited by 2^3 = 8 and the cap
        assert bonds[3].dim <= 8

    def test_bond_structure_unreachable_charge(self):
        sites = SiteSet.uniform(SpinHalfSite(), 2)
        with pytest.raises(ValueError):
            bond_structure(sites, (6,), 4)


class TestAutoMPO:
    def test_heisenberg_matches_ed_matrix(self, heis6):
        sites, opsum, config, mpo = heis6
        dense = mpo.to_dense_matrix()
        ref = build_hamiltonian(opsum, sites).toarray().real
        assert np.allclose(dense, ref, atol=1e-12)

    def test_hubbard_chain_matches_ed_matrix(self):
        lat, sites, opsum, config = hubbard_chain_model(4, t=1.0, u=4.0)
        mpo = build_mpo(opsum, sites)
        assert np.allclose(mpo.to_dense_matrix(),
                           build_hamiltonian(opsum, sites).toarray().real,
                           atol=1e-12)

    def test_triangular_hubbard_matches_ed_matrix(self):
        """Longer-range hoppings exercise non-trivial Jordan-Wigner strings."""
        lat, sites, opsum, config = triangular_hubbard_model(2, 2, t=1.0, u=4.0)
        mpo = build_mpo(opsum, sites)
        assert np.allclose(mpo.to_dense_matrix(),
                           build_hamiltonian(opsum, sites).toarray().real,
                           atol=1e-12)

    def test_tfim_dense_path(self):
        lat, sites, opsum, config = tfim_model(5, j=1.0, h=0.8)
        mpo = build_mpo(opsum, sites)
        assert np.allclose(mpo.to_dense_matrix(),
                           build_hamiltonian(opsum, sites).toarray().real,
                           atol=1e-12)

    def test_compression_preserves_operator(self, heis6):
        sites, opsum, config, mpo = heis6
        compressed = build_mpo(opsum, sites, compress=True, cutoff=1e-13)
        assert compressed.max_bond_dimension() <= mpo.max_bond_dimension()
        assert np.allclose(compressed.to_dense_matrix(),
                           mpo.to_dense_matrix(), atol=1e-8)

    def test_mpo_bond_dimension_reasonable(self, heis6):
        sites, opsum, config, mpo = heis6
        # nearest-neighbour Heisenberg compresses to k = 5
        compressed = build_mpo(opsum, sites, compress=True)
        assert compressed.max_bond_dimension() <= 6

    def test_charge_violating_term_rejected(self):
        sites = SiteSet.uniform(SpinHalfSite(), 3)
        from repro.mps import OpSum
        os = OpSum().add(1.0, "S+", 0, "S+", 1)
        with pytest.raises(ValueError):
            build_mpo(os, sites)

    def test_empty_opsum_rejected(self):
        from repro.mps import OpSum
        sites = SiteSet.uniform(SpinHalfSite(), 3)
        with pytest.raises(ValueError):
            build_mpo(OpSum(), sites)

    def test_expectation_of_product_state(self):
        lat, sites, opsum, config = heisenberg_chain_model(6, j2=0.0)
        mpo = build_mpo(opsum, sites)
        neel = MPS.product_state(sites, config)
        # Néel state: only the Sz Sz terms contribute, -1/4 per bond
        assert mpo.expectation(neel) == pytest.approx(-0.25 * 5)

    def test_complex_coefficient_requires_complex_dtype(self):
        from repro.mps import OpSum
        sites = SiteSet.uniform(SpinHalfSite(), 3)
        os = OpSum().add(1.0 + 0.5j, "Sz", 0, "Sz", 1)
        with pytest.raises(ValueError):
            build_mpo(os, sites)
        mpo = build_mpo(os, sites, dtype=np.complex128)
        assert mpo.tensors[0].dtype.kind == "c"
