"""Tests for the measurement layer (profiles, correlators, entropy, variance)."""

import numpy as np
import pytest

from repro.dmrg import (bond_spectrum, connected_correlation, correlation,
                        correlation_matrix, energy_and_variance,
                        energy_variance, entanglement_profile, expect_opsum,
                        expect_term, expectation_profile, local_expectation,
                        measure, renyi_entropy, run_dmrg)
from repro.ed import build_hamiltonian, ground_state, site_operator_full
from repro.models import heisenberg_chain_model, hubbard_chain_model
from repro.mps import MPS, OpSum, Term, build_mpo
from repro.mps.opsum import OpFactor


@pytest.fixture(scope="module")
def spin_state():
    """A random symmetric MPS on a 6-site spin chain plus its dense vector."""
    _, sites, opsum, config = heisenberg_chain_model(6)
    mpo = build_mpo(opsum, sites)
    rng = np.random.default_rng(3)
    psi = MPS.random(sites, total_charge=sites.total_charge(config),
                     bond_dim=6, rng=rng)
    return sites, opsum, mpo, psi, psi.to_dense_vector()


@pytest.fixture(scope="module")
def electron_state():
    """A random symmetric MPS on a 4-site Hubbard chain plus its dense vector."""
    _, sites, opsum, config = hubbard_chain_model(4, u=4.0)
    mpo = build_mpo(opsum, sites)
    rng = np.random.default_rng(9)
    psi = MPS.random(sites, total_charge=sites.total_charge(config),
                     bond_dim=8, rng=rng)
    return sites, opsum, mpo, psi, psi.to_dense_vector()


@pytest.fixture(scope="module")
def spin_ground_state():
    """DMRG ground state of an 8-site Heisenberg chain."""
    _, sites, opsum, config = heisenberg_chain_model(8)
    mpo = build_mpo(opsum, sites)
    psi0 = MPS.product_state(sites, config)
    result, psi = run_dmrg(mpo, psi0, maxdim=64, nsweeps=8, cutoff=1e-12)
    return sites, opsum, mpo, psi, result


def _dense_expect(sites, vec, pairs):
    """Reference expectation of a product of local operators from the dense vector."""
    dim = len(vec)
    import scipy.sparse as sp
    op = sp.identity(dim, format="csr", dtype=complex)
    for name, site in reversed(pairs):
        op = site_operator_full(sites, name, site) @ op
    return complex(np.vdot(vec, op @ vec) / np.vdot(vec, vec))


class TestLocalExpectation:
    def test_matches_dense_reference(self, spin_state):
        sites, _, _, psi, vec = spin_state
        for j in (0, 2, 5):
            val = local_expectation(psi, "Sz", j)
            ref = _dense_expect(sites, vec, [("Sz", j)])
            assert val == pytest.approx(ref, abs=1e-10)

    def test_profile_sums_to_total_charge(self, spin_state):
        sites, _, _, psi, _ = spin_state
        prof = expectation_profile(psi, "Sz")
        # total charge is 2*Sz = 0 for the Neel configuration
        assert float(np.sum(prof)) == pytest.approx(0.0, abs=1e-10)

    def test_density_profile_electrons(self, electron_state):
        sites, _, _, psi, vec = electron_state
        prof = expectation_profile(psi, "Ntot")
        assert float(np.sum(prof)) == pytest.approx(4.0, abs=1e-9)
        for j in range(4):
            ref = _dense_expect(sites, vec, [("Ntot", j)])
            assert prof[j] == pytest.approx(np.real(ref), abs=1e-10)

    def test_agrees_with_mps_method(self, spin_state):
        _, _, _, psi, _ = spin_state
        assert local_expectation(psi, "Sz", 3) == pytest.approx(
            complex(psi.expect_one_site("Sz", 3)), abs=1e-10)


class TestCorrelations:
    def test_szsz_matches_dense(self, spin_state):
        sites, _, _, psi, vec = spin_state
        for i, j in ((0, 3), (1, 4), (2, 2)):
            val = correlation(psi, "Sz", i, "Sz", j)
            ref = _dense_expect(sites, vec, [("Sz", i), ("Sz", j)])
            assert val == pytest.approx(ref, abs=1e-10)

    def test_spin_flip_correlator(self, spin_state):
        sites, _, _, psi, vec = spin_state
        val = correlation(psi, "S+", 1, "S-", 4)
        ref = _dense_expect(sites, vec, [("S+", 1), ("S-", 4)])
        assert val == pytest.approx(ref, abs=1e-10)

    def test_fermionic_hopping_with_jw_string(self, electron_state):
        sites, _, _, psi, vec = electron_state
        for i, j in ((0, 2), (0, 3), (1, 3)):
            val = correlation(psi, "Cdagup", i, "Cup", j)
            ref = _dense_expect(sites, vec, [("Cdagup", i), ("Cup", j)])
            assert val == pytest.approx(ref, abs=1e-10)

    def test_reversed_order_fermionic_sign(self, electron_state):
        sites, _, _, psi, vec = electron_state
        val = correlation(psi, "Cup", 3, "Cdagup", 0)
        ref = _dense_expect(sites, vec, [("Cup", 3), ("Cdagup", 0)])
        assert val == pytest.approx(ref, abs=1e-10)

    def test_correlation_matrix_hermitian(self, electron_state):
        _, _, _, psi, _ = electron_state
        c = correlation_matrix(psi, "Cdagup", "Cup")
        assert np.allclose(c, np.conj(c).T, atol=1e-10)
        # diagonal is the up density
        dens = expectation_profile(psi, "Nup")
        assert np.allclose(np.real(np.diag(c)), dens, atol=1e-10)

    def test_correlation_matrix_subset(self, spin_state):
        _, _, _, psi, _ = spin_state
        c = correlation_matrix(psi, "Sz", "Sz", sites=[0, 2, 4])
        assert c.shape == (3, 3)
        assert c[0, 1] == pytest.approx(correlation(psi, "Sz", 0, "Sz", 2),
                                        abs=1e-12)

    def test_connected_correlator(self, spin_state):
        _, _, _, psi, _ = spin_state
        raw = correlation(psi, "Sz", 0, "Sz", 3)
        conn = connected_correlation(psi, "Sz", 0, "Sz", 3)
        prod = local_expectation(psi, "Sz", 0) * local_expectation(psi, "Sz", 3)
        assert conn == pytest.approx(raw - prod, abs=1e-12)


class TestOpSumExpectation:
    def test_matches_mpo_expectation(self, spin_state):
        _, opsum, mpo, psi, _ = spin_state
        assert np.real(expect_opsum(psi, opsum)) == pytest.approx(
            mpo.expectation(psi), rel=1e-9)

    def test_matches_dense_hamiltonian(self, electron_state):
        sites, opsum, _, psi, vec = electron_state
        h = build_hamiltonian(opsum, sites).toarray()
        ref = np.vdot(vec, h @ vec) / np.vdot(vec, vec)
        assert np.real(expect_opsum(psi, opsum)) == pytest.approx(
            np.real(ref), abs=1e-9)

    def test_single_term(self, spin_state):
        _, _, _, psi, _ = spin_state
        term = Term(2.0, (OpFactor("Sz", 1), OpFactor("Sz", 2)))
        assert expect_term(psi, term) == pytest.approx(
            2.0 * correlation(psi, "Sz", 1, "Sz", 2), abs=1e-12)


class TestEntanglement:
    def test_product_state_has_zero_entropy(self, spin_state):
        sites, _, _, _, _ = spin_state
        prod = MPS.product_state(sites, ["Up", "Dn"] * 3)
        prof = entanglement_profile(prod)
        assert np.allclose(prof, 0.0, atol=1e-12)

    def test_bond_spectrum_normalized(self, spin_state):
        _, _, _, psi, _ = spin_state
        spec = bond_spectrum(psi, 2)
        assert float((spec ** 2).sum()) == pytest.approx(1.0)
        assert np.all(np.diff(spec) <= 1e-12)

    def test_renyi_limits(self, spin_state):
        _, _, _, psi, _ = spin_state
        s_vn = renyi_entropy(psi, 2, alpha=1.0)
        assert s_vn == pytest.approx(psi.entanglement_entropy(2), abs=1e-10)
        # Renyi entropies decrease with alpha
        assert renyi_entropy(psi, 2, alpha=2.0) <= s_vn + 1e-12

    def test_invalid_renyi_index(self, spin_state):
        _, _, _, psi, _ = spin_state
        with pytest.raises(ValueError):
            renyi_entropy(psi, 1, alpha=0.0)

    def test_entanglement_profile_length(self, spin_state):
        _, _, _, psi, _ = spin_state
        assert entanglement_profile(psi).shape == (len(psi) - 1,)


class TestEnergyVariance:
    def test_variance_nonnegative_random_state(self, spin_state):
        _, _, mpo, psi, _ = spin_state
        e, var = energy_and_variance(psi, mpo)
        assert var >= 0.0
        assert e == pytest.approx(mpo.expectation(psi), rel=1e-9)

    def test_ground_state_has_small_variance(self, spin_ground_state):
        _, _, mpo, psi, result = spin_ground_state
        var = energy_variance(psi, mpo)
        assert var < 1e-6

    def test_variance_matches_dense(self, electron_state):
        sites, opsum, mpo, psi, vec = electron_state
        h = build_hamiltonian(opsum, sites).toarray().real
        v = vec / np.linalg.norm(vec)
        ref_e = float(v @ h @ v)
        ref_var = float(v @ h @ h @ v) - ref_e ** 2
        e, var = energy_and_variance(psi, mpo)
        assert e == pytest.approx(ref_e, abs=1e-8)
        assert var == pytest.approx(ref_var, abs=1e-6)


class TestMeasureReport:
    def test_ground_state_report(self, spin_ground_state):
        _, opsum, mpo, psi, result = spin_ground_state
        report = measure(psi, mpo, profile_ops=["Sz"])
        assert report.energy == pytest.approx(result.energy, abs=1e-7)
        assert report.variance < 1e-6
        assert report.max_bond_dimension == psi.max_bond_dimension()
        assert "Sz" in report.profiles
        assert "energy" in report.summary()

    def test_dmrg_energy_matches_ed(self, spin_ground_state):
        sites, opsum, _, psi, result = spin_ground_state
        charge = psi.total_charge()
        evals, _ = ground_state(opsum, sites, charge=charge, k=1)
        assert result.energy == pytest.approx(float(evals[0]), abs=1e-7)
