"""Tests for the additional Table-I models and the model registry."""

import numpy as np
import pytest

from repro.dmrg import run_dmrg
from repro.ed import ground_state_energy
from repro.models import (available_models, build_model, doped_configuration,
                          extended_hubbard_opsum, get_model,
                          square_hubbard_model, uv_hubbard_chain_model)
from repro.models.lattices import chain
from repro.mps import MPS, build_mpo


class TestExtendedHubbard:
    def test_v_zero_reduces_to_plain_hubbard(self):
        from repro.models import hubbard_opsum
        lat = chain(4)
        plain = hubbard_opsum(lat, t=1.0, u=4.0)
        extended = extended_hubbard_opsum(lat, t=1.0, u=4.0, v=0.0)
        assert len(extended) == len(plain)

    def test_v_term_adds_density_density_bonds(self):
        lat = chain(4)
        extended = extended_hubbard_opsum(lat, t=1.0, u=4.0, v=1.0)
        plain = extended_hubbard_opsum(lat, t=1.0, u=4.0, v=0.0)
        assert len(extended) == len(plain) + len(lat.bonds_of_kind("nn"))

    def test_uv_chain_dmrg_matches_ed(self):
        _, sites, opsum, config = uv_hubbard_chain_model(4, t=1.0, u=4.0, v=1.0)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config))
        result, _ = run_dmrg(mpo, psi0, maxdim=64, nsweeps=8, cutoff=1e-12)
        assert result.energy == pytest.approx(exact, abs=1e-6)

    def test_repulsive_v_raises_energy(self):
        _, sites, os_v0, config = uv_hubbard_chain_model(4, u=4.0, v=0.0)
        _, _, os_v1, _ = uv_hubbard_chain_model(4, u=4.0, v=2.0)
        charge = sites.total_charge(config)
        e0 = ground_state_energy(os_v0, sites, charge=charge)
        e1 = ground_state_energy(os_v1, sites, charge=charge)
        assert e1 > e0


class TestSquareHubbard:
    def test_small_cylinder_dmrg_matches_ed(self):
        lat, sites, opsum, config = square_hubbard_model(3, 2, t=1.0, u=6.0)
        assert lat.nsites == 6
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config))
        result, _ = run_dmrg(mpo, psi0, maxdim=128, nsweeps=10, cutoff=1e-12)
        assert result.energy == pytest.approx(exact, abs=1e-5)

    def test_cylinder_has_periodic_bonds(self):
        lat, _, _, _ = square_hubbard_model(4, 3)
        # a 4x3 cylinder with periodic y has 4*3 vertical + 3*3 horizontal bonds
        assert len(lat.bonds_of_kind("nn")) == 4 * 3 + 3 * 3


class TestDopedConfiguration:
    def test_hole_count(self):
        config = doped_configuration(12, 2)
        assert config.count("Emp") == 2
        assert len(config) == 12

    def test_zero_holes_is_half_filled(self):
        config = doped_configuration(8, 0)
        assert config.count("Emp") == 0
        assert config.count("Up") == config.count("Dn") == 4

    def test_invalid_hole_count(self):
        with pytest.raises(ValueError):
            doped_configuration(4, 5)

    def test_doped_sector_reachable_by_dmrg(self):
        """A doped Hubbard chain converges to the ED energy of that sector."""
        from repro.models import hubbard_opsum, hubbard_sites
        lat = chain(4)
        sites = hubbard_sites(4)
        opsum = hubbard_opsum(lat, t=1.0, u=4.0)
        config = doped_configuration(4, 2)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config))
        result, _ = run_dmrg(mpo, psi0, maxdim=64, nsweeps=8)
        assert result.energy == pytest.approx(exact, abs=1e-6)


class TestRegistry:
    def test_paper_systems_registered(self):
        models = available_models()
        assert "spins" in models
        assert "electrons" in models

    def test_build_with_overrides(self):
        lat, sites, opsum, config = build_model("heisenberg-chain", n=6)
        assert lat.nsites == 6
        assert len(sites) == 6
        assert len(config) == 6

    def test_defaults_match_paper(self):
        entry = get_model("spins")
        assert entry.defaults["lx"] == 20
        assert entry.defaults["ly"] == 10
        assert entry.defaults["j2"] == 0.5
        entry = get_model("electrons")
        assert entry.defaults["u"] == 8.5

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("kitaev-honeycomb")

    def test_all_registered_models_build(self):
        for name in available_models():
            overrides = {}
            if name == "spins":
                overrides = {"lx": 4, "ly": 2}
            elif name in ("electrons", "triangular-hubbard"):
                overrides = {"lx": 3, "ly": 2}
            elif name in ("square-hubbard", "j1j2-cylinder"):
                overrides = {"lx": 3, "ly": 2}
            elif name in ("heisenberg-chain", "hubbard-chain",
                          "uv-hubbard-chain", "tfim"):
                overrides = {"n": 6}
            lat, sites, opsum, config = build_model(name, **overrides)
            assert lat.nsites == len(sites) == len(config)
            assert len(opsum) > 0

    def test_registry_energies_consistent_with_direct_builders(self):
        _, sites_a, os_a, cfg_a = build_model("hubbard-chain", n=4)
        from repro.models import hubbard_chain_model
        _, sites_b, os_b, cfg_b = hubbard_chain_model(4)
        ea = ground_state_energy(os_a, sites_a, charge=sites_a.total_charge(cfg_a))
        eb = ground_state_energy(os_b, sites_b, charge=sites_b.total_charge(cfg_b))
        assert ea == pytest.approx(eb)
