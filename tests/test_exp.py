"""Tests for the experiment orchestration subsystem (:mod:`repro.exp`)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.exp import (BUILTIN_GRIDS, GridSpec, RunInterrupted, RunRegistry,
                       RunSpec, builtin_specs, execute_and_record,
                       execute_run, load_specs, run_campaign)


def tiny_spec(**overrides) -> RunSpec:
    fields = {"model": "heisenberg-chain", "params": {"n": 6},
              "maxdim": 12, "nsweeps": 2, "seed": 1}
    fields.update(overrides)
    return RunSpec.from_dict(fields)


# --------------------------------------------------------------------------- #
# spec hashing
# --------------------------------------------------------------------------- #
class TestSpecHashing:
    def test_dict_ordering_irrelevant(self):
        a = RunSpec.from_dict({"model": "heisenberg-chain", "maxdim": 32,
                               "nsweeps": 3, "params": {"n": 8, "j2": 0.5}})
        b = RunSpec.from_dict({"params": {"j2": 0.5, "n": 8}, "nsweeps": 3,
                               "maxdim": 32, "model": "heisenberg-chain"})
        assert a.run_id == b.run_id
        assert a.canonical_json() == b.canonical_json()

    def test_numeric_coercion_hashes_equal(self):
        a = RunSpec.from_dict({"model": "tfim", "maxdim": 64})
        b = RunSpec.from_dict({"model": "tfim", "maxdim": 64.0})
        assert a.run_id == b.run_id

    def test_content_changes_the_id(self):
        base = tiny_spec()
        assert tiny_spec(maxdim=16).run_id != base.run_id
        assert tiny_spec(seed=2).run_id != base.run_id
        assert tiny_spec(params={"n": 8}).run_id != base.run_id
        assert tiny_spec(backend="list").run_id != base.run_id

    def test_run_id_names_model_and_engine(self):
        spec = tiny_spec(engine="single-site")
        assert spec.run_id.startswith("heisenberg-chain-single-site-")

    def test_label_is_cosmetic_not_identity(self):
        """Relabelling the same physics keeps the same run id."""
        plain = tiny_spec()
        labelled = tiny_spec(label="fig8 leftmost point")
        assert labelled.run_id == plain.run_id
        assert labelled.to_dict()["label"] == "fig8 leftmost point"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            RunSpec.from_dict({"model": "tfim", "maxdmi": 32})

    def test_invalid_choices_rejected(self):
        with pytest.raises(ValueError):
            RunSpec.from_dict({"model": "tfim", "engine": "three-site"})
        with pytest.raises(ValueError):
            RunSpec.from_dict({"model": "tfim", "backend": "mpi"})

    def test_stable_across_process_boundary(self):
        """The same spec hashed in a fresh interpreter gives the same id."""
        spec = tiny_spec(params={"n": 8, "j2": 0.25}, maxdim=48)
        code = (
            "import json, sys\n"
            "from repro.exp import RunSpec\n"
            "fields = json.loads(sys.argv[1])\n"
            "print(RunSpec.from_dict(fields).run_id)\n")
        # reversed key order on top of the process boundary
        scrambled = dict(reversed(list(spec.to_dict().items())))
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code, json.dumps(scrambled)],
            capture_output=True, text=True, env=env, check=True)
        assert out.stdout.strip() == spec.run_id


class TestGrids:
    def test_cartesian_expansion(self):
        grid = GridSpec(base={"model": "heisenberg-chain", "nsweeps": 2},
                        axes={"params.n": [6, 8], "maxdim": [12, 16]})
        specs = grid.expand()
        assert len(specs) == 4
        assert {(dict(s.params)["n"], s.maxdim) for s in specs} == \
            {(6, 12), (6, 16), (8, 12), (8, 16)}
        assert len({s.run_id for s in specs}) == 4

    def test_zip_axes_vary_together(self):
        grid = GridSpec(base={"model": "heisenberg-chain", "backend": "list"},
                        zips=[{"params.n": [6, 8], "nodes": [1, 4]}])
        specs = grid.expand()
        assert [(dict(s.params)["n"], s.nodes) for s in specs] == \
            [(6, 1), (8, 4)]

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            GridSpec(base={"model": "tfim"},
                     zips=[{"params.n": [6, 8], "nodes": [1]}])

    def test_expansion_order_deterministic(self):
        a = GridSpec(base={"model": "tfim"},
                     axes={"maxdim": [8, 16], "seed": [0, 1]}).expand()
        b = GridSpec(base={"model": "tfim"},
                     axes={"seed": [0, 1], "maxdim": [8, 16]}).expand()
        assert [s.run_id for s in a] == [s.run_id for s in b]

    def test_load_specs_grid_file(self, tmp_path):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps({
            "name": "file-campaign",
            "base": {"model": "heisenberg-chain", "nsweeps": 2},
            "axes": {"maxdim": [12, 16]},
        }))
        name, specs = load_specs(grid_file)
        assert name == "file-campaign"
        assert [s.maxdim for s in specs] == [12, 16]

    def test_load_specs_explicit_runs(self, tmp_path):
        grid_file = tmp_path / "runs.json"
        grid_file.write_text(json.dumps({
            "base": {"model": "heisenberg-chain", "params": {"n": 6}},
            "runs": [{"maxdim": 12}, {"maxdim": 16, "params": {"n": 8}}],
        }))
        _, specs = load_specs(grid_file)
        assert [(s.maxdim, dict(s.params)["n"]) for s in specs] == \
            [(12, 6), (16, 8)]

    def test_builtin_grids_all_expand(self):
        for name in BUILTIN_GRIDS:
            campaign, specs = builtin_specs(name)
            assert campaign == name
            assert specs, name
            assert len({s.run_id for s in specs}) == len(specs)

    def test_campaign_smoke_is_2x2(self):
        _, specs = builtin_specs("campaign-smoke")
        assert len(specs) == 4


# --------------------------------------------------------------------------- #
# scheduler + registry
# --------------------------------------------------------------------------- #
class TestScheduler:
    def test_inline_campaign_records_and_skips(self, tmp_path):
        registry = RunRegistry(tmp_path)
        specs = [tiny_spec(), tiny_spec(maxdim=16)]
        result = run_campaign(specs, registry=registry, workers=0)
        assert result.completed == 2 and result.ok
        # registry layout: spec + one attempt with report and meta
        for spec in specs:
            record = registry.record_dir(spec.run_id)
            assert (record / "spec.json").is_file()
            assert (record / "attempt-000" / "report.json").is_file()
            assert (record / "attempt-000" / "meta.json").is_file()
            rec = registry.load(spec.run_id)
            assert rec.completed
            assert rec.report["run_id"] == spec.run_id
            assert rec.report["spec"] == spec.to_dict()
        # re-execution is skipped via the content-hash lookup
        again = run_campaign(specs, registry=registry, workers=0)
        assert again.skipped == 2 and again.completed == 0
        assert len(registry.attempt_dirs(specs[0].run_id)) == 1

    def test_force_appends_a_new_attempt(self, tmp_path):
        registry = RunRegistry(tmp_path)
        spec = tiny_spec()
        run_campaign([spec], registry=registry, workers=0)
        run_campaign([spec], registry=registry, workers=0, force=True)
        assert len(registry.attempt_dirs(spec.run_id)) == 2

    def test_pool_campaign_with_two_workers(self, tmp_path):
        registry = RunRegistry(tmp_path)
        _, specs = builtin_specs("campaign-smoke")
        result = run_campaign(specs, registry=registry, workers=2)
        assert result.completed == 4 and result.ok
        for spec in specs:
            assert registry.has_completed(spec.run_id)

    def test_worker_failure_is_isolated(self, tmp_path):
        """A raising run is recorded as failed; the campaign continues."""
        registry = RunRegistry(tmp_path)
        good = [tiny_spec(), tiny_spec(maxdim=16)]
        bad = tiny_spec(params={"n": 6, "does_not_exist": 1})
        result = run_campaign(good + [bad], registry=registry, workers=2)
        assert result.completed == 2
        assert result.count("failed") == 1
        assert not result.ok
        rec = registry.load(bad.run_id)
        assert rec.status == "failed"
        assert "does_not_exist" in rec.meta["error"]
        # good runs are untouched by the failure
        for spec in good:
            assert registry.has_completed(spec.run_id)

    def test_duplicate_specs_collapse(self, tmp_path):
        registry = RunRegistry(tmp_path)
        result = run_campaign([tiny_spec(), tiny_spec()], registry=registry,
                              workers=0)
        assert len(result.outcomes) == 1

    def test_per_run_timeout_terminates_and_records(self, tmp_path):
        registry = RunRegistry(tmp_path)
        slow = RunSpec.from_dict({"model": "heisenberg-chain",
                                  "params": {"n": 16}, "maxdim": 64,
                                  "nsweeps": 8, "seed": 1})
        result = run_campaign([slow], registry=registry, workers=1,
                              timeout=0.3)
        outcome = result.outcomes[0]
        assert outcome.status == "timeout"
        assert not result.ok
        rec = registry.load(slow.run_id)
        assert rec.status == "timeout"
        assert "timed out" in rec.meta["error"]
        assert not registry.has_completed(slow.run_id)


class TestResume:
    def test_interrupted_run_resumes_to_identical_energy(self, tmp_path):
        """Interrupt mid-schedule, resume from checkpoint, match at 1e-10."""
        spec = RunSpec.from_dict({"model": "heisenberg-chain",
                                  "params": {"n": 8}, "maxdim": 64,
                                  "nsweeps": 8, "cutoff": 1e-12, "seed": 3})
        reference = execute_run(spec)

        registry = RunRegistry(tmp_path)
        outcome = execute_and_record(spec, registry,
                                     interrupt_after_sweeps=4)
        assert outcome.status == "interrupted"
        assert registry.checkpoint_path(spec.run_id).exists()
        assert not registry.has_completed(spec.run_id)

        # the next campaign invocation resumes from the checkpoint
        result = run_campaign([spec], registry=registry, workers=0)
        assert result.completed == 1
        rec = registry.load(spec.run_id)
        assert rec.completed
        assert rec.report["resumed_sweeps"] == 4
        assert rec.energy == pytest.approx(reference.energies[0], abs=1e-10)
        # the scratch checkpoint is cleaned up after completion
        assert not registry.checkpoint_path(spec.run_id).exists()

    def test_runner_interrupt_raises_after_checkpoint(self, tmp_path):
        spec = tiny_spec(nsweeps=3)
        ckpt = tmp_path / "ck.npz"
        with pytest.raises(RunInterrupted):
            execute_run(spec, checkpoint_path=ckpt, resume=True,
                        interrupt_after_sweeps=1)
        assert ckpt.exists()

    def test_checkpoint_of_other_run_rejected(self, tmp_path):
        ckpt = tmp_path / "ck.npz"
        with pytest.raises(RunInterrupted):
            execute_run(tiny_spec(nsweeps=3), checkpoint_path=ckpt,
                        resume=True, interrupt_after_sweeps=1)
        with pytest.raises(ValueError, match="belongs to run"):
            execute_run(tiny_spec(nsweeps=3, seed=9), checkpoint_path=ckpt,
                        resume=True)

    def test_corrupt_checkpoint_restarts_instead_of_failing(self, tmp_path):
        """A checkpoint truncated by a mid-write kill must not wedge the run."""
        spec = tiny_spec(nsweeps=3)
        reference = execute_run(spec)
        registry = RunRegistry(tmp_path)
        ckpt = registry.checkpoint_path(spec.run_id)
        ckpt.parent.mkdir(parents=True)
        ckpt.write_bytes(b"PK\x03\x04 truncated mid-write")
        result = run_campaign([spec], registry=registry, workers=0)
        assert result.completed == 1
        rec = registry.load(spec.run_id)
        assert rec.completed
        assert rec.report["resumed_sweeps"] == 0
        assert rec.energy == pytest.approx(reference.energies[0], abs=1e-12)

    def test_excited_engine_rejects_checkpointing(self, tmp_path):
        spec = tiny_spec(engine="excited")
        with pytest.raises(ValueError, match="excited"):
            execute_run(spec, checkpoint_path=tmp_path / "ck.npz")

    def test_single_site_checkpoint_resume(self, tmp_path):
        spec = tiny_spec(engine="single-site", maxdim=24, nsweeps=6)
        reference = execute_run(spec)
        registry = RunRegistry(tmp_path)
        execute_and_record(spec, registry, interrupt_after_sweeps=3)
        result = run_campaign([spec], registry=registry, workers=0)
        assert result.completed == 1
        rec = registry.load(spec.run_id)
        assert rec.energy == pytest.approx(reference.energies[0], abs=1e-10)


class TestSeededRuns:
    def test_seed_part_of_run_id_and_reproducible(self):
        a = execute_run(tiny_spec(initial_state="random", seed=5, nsweeps=3))
        b = execute_run(tiny_spec(initial_state="random", seed=5, nsweeps=3))
        c = execute_run(tiny_spec(initial_state="random", seed=6, nsweeps=3))
        assert a.spec.run_id == b.spec.run_id != c.spec.run_id
        assert a.energies[0] == b.energies[0]
        # the random initial state actually depends on the seed
        av = a.psi.to_dense_vector()
        bv = b.psi.to_dense_vector()
        assert av == pytest.approx(bv)


# --------------------------------------------------------------------------- #
# registry queries and diff
# --------------------------------------------------------------------------- #
def _fake_record(registry, spec, *, modelled_seconds, energy,
                 status="completed"):
    report = {"run_id": spec.run_id, "spec": spec.to_dict(),
              "energies": [energy], "modelled_seconds": modelled_seconds}
    registry.write(spec, status=status, report=report, seconds=1.0)


class TestRegistryDiff:
    def test_injected_modelled_seconds_regression_flagged(self, tmp_path):
        registry = RunRegistry(tmp_path)
        a = tiny_spec(seed=1)
        b = tiny_spec(seed=2)
        _fake_record(registry, a, modelled_seconds=1.0, energy=-3.0)
        _fake_record(registry, b, modelled_seconds=1.5, energy=-3.0)
        diff = registry.diff(a, b)
        assert diff.regressed
        assert any("modelled seconds regressed" in r
                   for r in diff.regressions)
        assert diff.modelled_seconds_delta == pytest.approx(0.5)
        # the reverse direction is an improvement, not a regression
        back = registry.diff(b, a)
        assert not back.regressed
        assert any("improved" in s for s in back.improvements)

    def test_energy_regression_flagged(self, tmp_path):
        registry = RunRegistry(tmp_path)
        a, b = tiny_spec(seed=1), tiny_spec(seed=2)
        _fake_record(registry, a, modelled_seconds=1.0, energy=-3.37)
        _fake_record(registry, b, modelled_seconds=1.0, energy=-3.30)
        diff = registry.diff(a, b)
        assert diff.regressed
        assert any("energy regressed" in r for r in diff.regressions)
        assert diff.spec_changes["seed"] == (1, 2)

    def test_within_tolerance_is_quiet(self, tmp_path):
        registry = RunRegistry(tmp_path)
        a, b = tiny_spec(seed=1), tiny_spec(seed=2)
        _fake_record(registry, a, modelled_seconds=1.00, energy=-3.0)
        _fake_record(registry, b, modelled_seconds=1.02, energy=-3.0)
        diff = registry.diff(a, b)
        assert not diff.regressed and not diff.improvements

    def test_latest_skips_failed_attempts(self, tmp_path):
        registry = RunRegistry(tmp_path)
        spec = tiny_spec()
        registry.write(spec, status="failed", error="boom", seconds=0.1)
        assert registry.latest(spec) is None
        _fake_record(registry, spec, modelled_seconds=1.0, energy=-3.0)
        rec = registry.latest(spec)
        assert rec is not None and rec.completed
        assert len(registry.attempt_dirs(spec.run_id)) == 2

    def test_prefix_resolution(self, tmp_path):
        registry = RunRegistry(tmp_path)
        spec = tiny_spec()
        _fake_record(registry, spec, modelled_seconds=1.0, energy=-3.0)
        assert registry.resolve(spec.run_id[:20]) == spec.run_id
        with pytest.raises(KeyError):
            registry.resolve("nope")


# --------------------------------------------------------------------------- #
# CLI front ends
# --------------------------------------------------------------------------- #
class TestSweepCLI:
    def test_sweep_grid_file_and_history(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps({
            "name": "cli-campaign",
            "base": {"model": "heisenberg-chain", "params": {"n": 6},
                     "nsweeps": 2},
            "axes": {"maxdim": [12, 16]},
        }))
        history = tmp_path / "history"
        code = main(["sweep", "--grid", str(grid_file), "--workers", "0",
                     "--history", str(history)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Campaign summary: cli-campaign" in out
        assert "completed 2, skipped 0, failed 0" in out
        # second invocation skips both runs via the content hash
        code = main(["sweep", "--grid", str(grid_file), "--workers", "0",
                     "--history", str(history)])
        assert code == 0
        assert "completed 0, skipped 2" in capsys.readouterr().out
        # history lists both runs
        code = main(["history", "--history", str(history)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("heisenberg-chain-two-site-") >= 2

    def test_sweep_dry_run_and_list_grids(self, tmp_path, capsys):
        assert main(["sweep", "--list-grids"]) == 0
        assert "campaign-smoke" in capsys.readouterr().out
        assert main(["sweep", "--grid", "campaign-smoke", "--dry-run",
                     "--history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("run") >= 4

    def test_history_model_filter_applies_before_limit(self, tmp_path,
                                                       capsys):
        registry = RunRegistry(tmp_path)
        _fake_record(registry, tiny_spec(), modelled_seconds=1.0, energy=-3.0)
        _fake_record(registry, RunSpec.from_dict({"model": "tfim"}),
                     modelled_seconds=1.0, energy=-9.0)
        code = main(["history", "--history", str(tmp_path), "--limit", "1",
                     "--model", "heisenberg-chain"])
        out = capsys.readouterr().out
        assert code == 0
        assert "heisenberg-chain-two-site-" in out

    def test_history_diff_cli(self, tmp_path, capsys):
        registry = RunRegistry(tmp_path)
        a, b = tiny_spec(seed=1), tiny_spec(seed=2)
        _fake_record(registry, a, modelled_seconds=1.0, energy=-3.0)
        _fake_record(registry, b, modelled_seconds=2.0, energy=-3.0)
        code = main(["history", "--history", str(tmp_path),
                     "--diff", a.run_id, b.run_id])
        out = capsys.readouterr().out
        assert code == 0
        assert "REGRESSION" in out
        code = main(["history", "--history", str(tmp_path),
                     "--diff", a.run_id, b.run_id, "--fail-on-regression"])
        capsys.readouterr()
        assert code == 1

    def test_run_checkpoint_resume_cli(self, tmp_path, capsys):
        ckpt = tmp_path / "ck.npz"
        args = ["run", "--model", "heisenberg-chain", "--param", "n=6",
                "--maxdim", "16", "--nsweeps", "3", "--seed", "4",
                "--checkpoint", str(ckpt)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "checkpoint" in first
        assert ckpt.exists()
        assert main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "resumed" in resumed

        def energy(text):
            for line in text.splitlines():
                if line.startswith("energy"):
                    return float(line.split(":")[1])
            raise AssertionError("no energy line")

        assert energy(resumed) == pytest.approx(energy(first), abs=1e-10)
