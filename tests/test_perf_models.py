"""Tests for the performance layer: flop counting, block model, Table II
complexity, shape simulation and the scaling harness."""

import numpy as np
import pytest

from repro.ctf import BLUE_WATERS, STAMPEDE2, SimWorld
from repro.perf import (GeometricBlockModel, MeasuredBlockStructure,
                        ShapeTensor, charge_contraction, charge_svd,
                        count_flops, flops, scaling_exponent, table2,
                        table2_entry)
from repro.perf.flops import contraction_flops, qr_flops, svd_flops
from repro.symmetry import BlockSparseTensor, Index


class TestFlopCounting:
    def test_contraction_flops_matmul(self):
        # (10x20) @ (20x30) -> 2*10*20*30
        assert contraction_flops((10, 20), (20, 30), (1,), (0,)) == 12000

    def test_svd_qr_flops_positive(self):
        assert svd_flops(100, 50) > 0
        assert qr_flops(100, 50) > 0

    def test_counter_categories(self):
        c = flops.FlopCounter()
        c.add(5, "gemm")
        c.add(3, "svd")
        c.add(2, "other")
        assert c.total == 10
        snap = c.snapshot()
        assert snap["gemm"] == 5
        c.reset()
        assert c.total == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            flops.FlopCounter().add(-1)

    def test_context_manager_delta(self):
        with count_flops() as c:
            flops.add_flops(7.0, "gemm")
        assert c.gemm == pytest.approx(7.0)


class TestGeometricBlockModel:
    def test_paper_parameters(self):
        spins = GeometricBlockModel.spins()
        electrons = GeometricBlockModel.electrons()
        assert (spins.q, spins.r) == (4.0, 0.6)
        assert (electrons.q, electrons.r) == (10.0, 0.65)

    def test_block_dims_decreasing(self):
        model = GeometricBlockModel.spins()
        dims = model.block_dims(4096)
        assert dims == sorted(dims, reverse=True)
        assert model.largest_block(4096) == dims[0] == 1024

    def test_num_blocks_grows_with_m(self):
        model = GeometricBlockModel.electrons()
        assert model.num_blocks(2 ** 15) > model.num_blocks(2 ** 11)

    def test_largest_block_roughly_linear(self):
        """Fig. 2a: the largest block scales as ~ m^0.94-0.97."""
        model = GeometricBlockModel.spins()
        ms = [2 ** 11, 2 ** 12, 2 ** 13, 2 ** 14, 2 ** 15]
        sizes = [model.largest_block(m) for m in ms]
        slope = np.polyfit(np.log(ms), np.log(sizes), 1)[0]
        assert 0.9 <= slope <= 1.05

    def test_fill_fraction_decreases_with_m(self):
        """Fig. 2b: sparsity (stored fraction) decreases with bond dimension."""
        model = GeometricBlockModel.electrons()
        assert model.fill_fraction(2 ** 15, d=4) < model.fill_fraction(2 ** 11, d=4)

    def test_fit_recovers_parameters(self):
        model = GeometricBlockModel(q=5.0, r=0.7)
        dims = model.block_dims(8192)
        fitted = GeometricBlockModel.fit(dims)
        assert fitted.r == pytest.approx(0.7, abs=0.1)
        assert fitted.q == pytest.approx(5.0, rel=0.5)


class TestMeasuredBlockStructure:
    def test_from_small_bond(self):
        left = Index([(0,), (2,)], [3, 2], flow=1)
        phys = Index([(1,), (-1,)], [1, 1], flow=1)
        right = Index([(1,), (3,), (-1,)], [3, 2, 1], flow=-1)
        ms = MeasuredBlockStructure.from_bond(left, phys, right)
        assert ms.num_blocks > 0
        assert ms.largest_block > 0
        assert 0 < ms.fill_fraction <= 1


class TestTable2:
    def test_all_rows_present(self):
        model = GeometricBlockModel.spins()
        rows = table2(model, 8192, k=32, d=2, nsites=200, nprocs=256)
        assert [r.algorithm for r in rows] == ["list", "sparse-sparse",
                                               "sparse-dense"]

    def test_dense_memory_larger_than_blocked(self):
        model = GeometricBlockModel.spins()
        blocked = table2_entry("list", model, 8192, 32, 2, 200, 256)
        dense = table2_entry("sparse-dense", model, 8192, 32, 2, 200, 256)
        assert dense.davidson_memory > blocked.davidson_memory
        assert dense.flops > blocked.flops

    def test_supersteps(self):
        model = GeometricBlockModel.electrons()
        lst = table2_entry("list", model, 8192, 26, 4, 36, 64)
        sparse = table2_entry("sparse-sparse", model, 8192, 26, 4, 36, 64)
        assert lst.bsp_supersteps > sparse.bsp_supersteps == 1.0
        # sparse pays more words per processor than the 2/3-power dense law
        assert sparse.bsp_comm_words > lst.bsp_comm_words

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            table2_entry("magic", GeometricBlockModel.spins(), 8192, 32, 2,
                         200, 256)

    def test_scaling_exponents_match_formulas(self):
        model = GeometricBlockModel.spins()
        ms = [2 ** 11, 2 ** 12, 2 ** 13, 2 ** 14, 2 ** 15]
        assert scaling_exponent(model, "flops", ms) == pytest.approx(3.0, abs=0.25)
        assert scaling_exponent(model, "davidson_memory", ms) == \
            pytest.approx(2.0, abs=0.25)


class TestShapeSimulation:
    def _pair(self):
        left = Index([(0,), (2,), (-2,)], [8, 5, 5], flow=1)
        right = Index([(1,), (-1,), (3,)], [6, 6, 2], flow=-1)
        phys = Index([(1,), (-1,)], [1, 1], flow=1)
        a = ShapeTensor((left, phys, right))
        b = ShapeTensor((right.dual(), phys.dual(), left.dual()))
        return a, b

    def test_shape_contract_matches_block_tensor(self, rng):
        """Shape-level contraction reproduces the real block structure."""
        i1 = Index([(0,), (1,)], [2, 3], flow=1)
        i2 = Index([(0,), (1,), (2,)], [2, 2, 1], flow=1)
        i3 = Index([(0,), (1,), (2,)], [1, 2, 2], flow=-1)
        a = BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)
        b = BlockSparseTensor.random([i3.dual(), i2.dual()], flux=(0,), rng=rng)
        real = a.contract(b, axes=([2], [0]))
        sa, sb = ShapeTensor.from_block_tensor(a), ShapeTensor.from_block_tensor(b)
        out, stats = sa.contract(sb, axes=([2], [0]))
        assert out.nnz == real.nnz
        assert set(out.blocks) == set(real.blocks)
        with count_flops() as counted:
            a.contract(b, axes=([2], [0]))
        assert sum(s.flops for s in stats) == pytest.approx(counted.total)

    def test_charge_contraction_all_algorithms(self):
        a, b = self._pair()
        for alg in ("list", "sparse-dense", "sparse-sparse"):
            world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
            out, nflops = charge_contraction(world, alg, a, b, ([2], [0]))
            assert nflops > 0
            assert world.modelled_seconds() > 0

    def test_charge_contraction_unknown_algorithm(self):
        a, b = self._pair()
        with pytest.raises(ValueError):
            charge_contraction(SimWorld(), "magic", a, b, ([2], [0]))

    def test_svd_group_shapes(self):
        a, _ = self._pair()
        shapes = a.svd_group_shapes([0, 1])
        assert all(r > 0 and c > 0 for r, c in shapes)
        world = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        assert charge_svd(world, "list", a, [0, 1]) > 0
        assert world.profiler.seconds["svd"] > 0

    def test_incompatible_contraction_rejected(self):
        a, b = self._pair()
        with pytest.raises(ValueError):
            a.contract(b, axes=([0], [1]))
