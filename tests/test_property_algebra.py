"""Property-based tests for MPS algebra and measurement invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dmrg import expectation_profile, local_expectation
from repro.models import heisenberg_chain_model
from repro.mps import MPS, add, apply_mpo, build_mpo, compress, overlap, scale


@pytest.fixture(scope="module")
def chain6():
    _, sites, opsum, config = heisenberg_chain_model(6)
    mpo = build_mpo(opsum, sites)
    return sites, mpo, config


def _random_state(sites, config, seed, bond_dim=6):
    return MPS.random(sites, total_charge=sites.total_charge(config),
                      bond_dim=bond_dim, rng=np.random.default_rng(seed))


class TestAlgebraProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed_a=st.integers(0, 50), seed_b=st.integers(51, 100),
           alpha=st.floats(-2, 2, allow_nan=False),
           beta=st.floats(-2, 2, allow_nan=False))
    def test_addition_is_linear_in_overlaps(self, chain6, seed_a, seed_b,
                                            alpha, beta):
        """<phi| (a psi1 + b psi2)> = a <phi|psi1> + b <phi|psi2>."""
        sites, _, config = chain6
        psi1 = _random_state(sites, config, seed_a)
        psi2 = _random_state(sites, config, seed_b)
        phi = _random_state(sites, config, seed_a + seed_b + 1)
        combo = add(psi1, psi2, alpha=alpha, beta=beta)
        lhs = overlap(phi, combo)
        rhs = alpha * overlap(phi, psi1) + beta * overlap(phi, psi2)
        assert lhs == pytest.approx(rhs, abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100), factor=st.floats(0.1, 3.0))
    def test_scaling_scales_norm(self, chain6, seed, factor):
        sites, _, config = chain6
        psi = _random_state(sites, config, seed)
        scaled = scale(psi, factor)
        assert abs(overlap(scaled, scaled)) == pytest.approx(
            factor ** 2 * abs(overlap(psi, psi)), rel=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_mpo_application_preserves_hermiticity(self, chain6, seed):
        """<psi|H|psi> computed through apply_mpo is real."""
        sites, mpo, config = chain6
        psi = _random_state(sites, config, seed)
        hpsi = apply_mpo(mpo, psi, compress_result=False)
        val = overlap(psi, hpsi)
        assert abs(np.imag(val)) < 1e-10

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100), max_dim=st.integers(2, 12))
    def test_compression_never_increases_norm(self, chain6, seed, max_dim):
        sites, _, config = chain6
        psi = _random_state(sites, config, seed, bond_dim=10)
        truncated = compress(psi, max_dim=max_dim)
        assert abs(overlap(truncated, truncated)) <= \
            abs(overlap(psi, psi)) * (1 + 1e-10)
        assert truncated.max_bond_dimension() <= max_dim

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_sz_profile_sums_to_sector_charge(self, chain6, seed):
        """The magnetization profile integrates to the conserved 2*Sz / 2."""
        sites, _, config = chain6
        psi = _random_state(sites, config, seed)
        prof = expectation_profile(psi, "Sz")
        total = sites.total_charge(config)[0] / 2.0
        assert float(np.sum(prof)) == pytest.approx(total, abs=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100), j=st.integers(0, 5))
    def test_identity_expectation_is_one(self, chain6, seed, j):
        sites, _, config = chain6
        psi = _random_state(sites, config, seed)
        assert local_expectation(psi, "Id", j) == pytest.approx(1.0, abs=1e-10)
