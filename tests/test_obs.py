"""Tests for the observability layer (:mod:`repro.obs`): tracer + metrics.

Covers the span recorder (nesting, ring-buffer drops, decorator, Chrome
export), the null fast path while tracing is disabled, the unified metrics
registry and its regression comparator, the registry-diff integration
(``repro history --diff`` flags metric regressions), the cross-process trace
merge with a SIGKILLed-and-respawned executor worker, the nesting-safe
profiler sections, and the new CLI surface (``--list-targets``, ``run
--trace``, ``trace summarize|export``).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.exp import RunRegistry, RunSpec, execute_run, run_campaign
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, diff_metrics
from repro.obs.trace import (WORKER_LANE_BASE, SpanRecorder, load_trace,
                             merge_traces, summarize_events)


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with tracing disabled."""
    trace.uninstall()
    yield
    trace.uninstall()


def tiny_spec(**overrides) -> RunSpec:
    fields = {"model": "heisenberg-chain", "params": {"n": 6},
              "maxdim": 12, "nsweeps": 2, "seed": 1}
    fields.update(overrides)
    return RunSpec.from_dict(fields)


# --------------------------------------------------------------------------- #
# span recorder
# --------------------------------------------------------------------------- #
class TestSpanRecorder:
    def test_disabled_span_is_shared_noop(self):
        a = trace.span("x", "t")
        b = trace.span("y", "t")
        assert a is b
        with a:
            pass
        assert a.seconds == 0.0

    def test_nested_spans_record_both(self):
        rec = trace.install(capacity=64)
        with trace.span("outer", "t"):
            with trace.span("inner", "t", depth=1):
                pass
        names = [ev[2] for ev in rec.events()]
        assert names == ["inner", "outer"]  # children complete first

    def test_ring_buffer_drops_oldest_and_counts(self):
        rec = trace.install(SpanRecorder(capacity=4))
        for i in range(10):
            with trace.span(f"s{i}", "t"):
                pass
        assert len(rec) == 4
        assert rec.dropped == 6
        assert [ev[2] for ev in rec.events()] == ["s6", "s7", "s8", "s9"]

    def test_traced_decorator(self):
        rec = trace.install(capacity=16)

        @trace.traced(category="t")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert any("work" in ev[2] for ev in rec.events())

    def test_instant_events(self):
        rec = trace.install(capacity=16)
        trace.instant("marker", "t", detail=3)
        (ev,) = rec.events()
        assert ev[2] == "marker" and ev[1] == 0.0

    def test_timed_span_measures_while_disabled(self):
        sp = trace.timed_span("work", "t").start()
        time.sleep(0.01)
        dt = sp.stop()
        assert dt >= 0.008
        assert sp.seconds == dt
        assert trace.recorder() is None  # nothing installed, nothing recorded

    def test_tracing_context_exports_valid_chrome_trace(self, tmp_path):
        path = tmp_path / "out.trace.json"
        with trace.tracing(str(path)):
            with trace.span("outer", "t", tag="v"):
                with trace.span("inner", "t"):
                    pass
            trace.instant("mark", "t")
        payload = json.loads(path.read_text())
        assert payload["otherData"]["schema"] == "repro-trace/1"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} >= {"outer", "inner"}
        assert instants and instants[0]["s"] == "t"
        assert any(m["name"] == "process_name" for m in meta)
        for ev in complete:
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        # restored to disabled afterwards
        assert trace.recorder() is None

    def test_summarize_events_aggregates(self, tmp_path):
        path = tmp_path / "out.trace.json"
        with trace.tracing(str(path)):
            for _ in range(3):
                with trace.span("hot", "t"):
                    pass
        rows = summarize_events(load_trace(str(path)))
        hot = next(r for r in rows if r["name"] == "hot")
        assert hot["count"] == 3
        assert hot["total_ms"] >= hot["max_ms"]

    def test_merge_traces_remaps_colliding_pids(self, tmp_path):
        paths = []
        for i in range(2):
            p = tmp_path / f"t{i}.json"
            with trace.tracing(str(p)):
                with trace.span(f"run{i}", "t"):
                    pass
            paths.append(p)
        merged = merge_traces([load_trace(str(p)) for p in paths])
        pids = {e["pid"] for e in merged["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 2  # same OS pid, remapped apart


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counters_gauges_histograms_flat(self):
        reg = MetricsRegistry()
        reg.inc("a.count")
        reg.inc("a.count", 2)
        reg.gauge("b.value", 1.5)
        reg.observe("c.dist", 1.0)
        reg.observe("c.dist", 3.0)
        flat = reg.flat()
        assert flat["a.count"] == 3
        assert flat["b.value"] == 1.5
        assert flat["c.dist.count"] == 2
        assert flat["c.dist.mean"] == 2.0
        assert flat["c.dist.max"] == 3.0
        snap = reg.snapshot()
        assert snap["histograms"]["c.dist"]["total"] == 4.0

    def test_absorb_types(self):
        reg = MetricsRegistry()
        reg.absorb("x", {"jobs": 4, "busy": True, "rate": 0.5, "name": "n"})
        assert reg.counters["x.jobs"] == 4
        assert reg.counters["x.busy"] == 1
        assert reg.gauges["x.rate"] == 0.5
        assert "x.name" not in reg.flat()

    def test_diff_metrics_flags_regressions_and_improvements(self):
        a = {"plan_cache.misses": 10, "layout.moves": 8, "other": 1}
        b = {"plan_cache.misses": 14, "layout.moves": 5, "other": 99}
        regs, imps, changes = diff_metrics(a, b)
        assert any("plan_cache.misses" in r for r in regs)
        assert any("layout.moves" in r for r in imps)
        assert changes["plan_cache.misses"] == (10.0, 14.0)
        assert "other" not in changes  # not a watched metric

    def test_diff_metrics_skips_missing_sides(self):
        regs, imps, changes = diff_metrics({"plan_cache.misses": 3}, {})
        assert not regs and not imps and not changes
        regs, imps, changes = diff_metrics(None, {"plan_cache.misses": 3})
        assert not regs and not imps and not changes


# --------------------------------------------------------------------------- #
# run reports carry metrics
# --------------------------------------------------------------------------- #
class TestRunReportMetrics:
    def test_report_has_flat_metrics_and_per_sweep_metrics(self):
        out = execute_run(tiny_spec())
        flat = out.report["metrics"]
        assert flat["plan_cache.hits"] > 0
        assert flat["run.sweeps"] == 2
        assert flat["sweep.seconds.count"] == 2
        for row in out.report["sweeps"]:
            assert row["metrics"]["plan_cache.hits"] == row["plan_hits"]
            assert "program.retraces" in row["metrics"]

    def test_registry_diff_flags_injected_metric_regression(self, tmp_path):
        registry = RunRegistry(tmp_path / "history")
        spec_a, spec_b = tiny_spec(seed=1), tiny_spec(seed=2)
        base = execute_run(spec_a).report
        worse = json.loads(json.dumps(base))
        worse["metrics"]["program.retraces"] = \
            base["metrics"]["program.retraces"] + 7
        registry.write(spec_a, status="completed", report=base)
        registry.write(spec_b, status="completed", report=worse)
        diff = registry.diff(spec_a.run_id, spec_b.run_id)
        assert any("program.retraces" in r for r in diff.regressions)
        assert diff.regressed
        assert diff.metric_changes["program.retraces"][1] == \
            diff.metric_changes["program.retraces"][0] + 7
        # the CLI path renders and gates on it
        code = main(["history", "--history", str(tmp_path / "history"),
                     "--diff", spec_a.run_id, spec_b.run_id,
                     "--fail-on-regression"])
        assert code == 1

    def test_old_reports_without_metrics_diff_cleanly(self, tmp_path):
        registry = RunRegistry(tmp_path / "history")
        spec_a, spec_b = tiny_spec(seed=3), tiny_spec(seed=4)
        base = execute_run(spec_a).report
        legacy = json.loads(json.dumps(base))
        del legacy["metrics"]
        registry.write(spec_a, status="completed", report=legacy)
        registry.write(spec_b, status="completed", report=base)
        diff = registry.diff(spec_a.run_id, spec_b.run_id)
        assert not diff.metric_changes


# --------------------------------------------------------------------------- #
# cross-process: executor worker spans survive a SIGKILL + respawn
# --------------------------------------------------------------------------- #
class TestCrossProcessTrace:
    def test_worker_spans_merge_and_respawn_counts_match(self):
        import numpy as np

        from tests.test_procops_faults import fresh_ops, kill_worker

        rec = trace.install(capacity=4096)
        ops = fresh_ops()
        try:
            rng = np.random.default_rng(2)
            a, b = rng.standard_normal((16, 12)), rng.standard_normal((12, 8))
            want = a @ b
            np.testing.assert_array_equal(ops.matmul(a, b), want)
            # park worker 0 in a sleep job and SIGKILL it mid-job; the retry
            # completes on the respawned worker and its span still ships
            job = ops._submit("sleep", 0.25, worker=0)
            kill_worker(ops, 0)
            assert ops._wait(job) is None
            np.testing.assert_array_equal(ops.matmul(a, b), want)
            described = ops.describe()
        finally:
            ops.shutdown()
            trace.uninstall()

        events = rec.events()
        job_spans = [ev for ev in events if ev[2].startswith("job:")]
        assert job_spans, "worker job spans must merge into the parent trace"
        lanes = {ev[5] for ev in job_spans}
        assert all(lane >= WORKER_LANE_BASE for lane in lanes)
        # the killed job's retry ran on the replacement worker process
        retried = [ev for ev in job_spans
                   if ev[2] == "job:sleep" and ev[6]["attempts"] == 2]
        assert retried
        respawn_marks = [ev for ev in events if ev[2] == "worker-respawn"]
        assert len(respawn_marks) == described["respawns"] >= 1
        assert any(ev[2] == "job-retry" for ev in events)

        reg = MetricsRegistry()
        reg.absorb("executor", described)
        assert reg.counters["executor.respawns"] == described["respawns"]
        assert reg.counters["executor.respawns"] == len(respawn_marks)

    def test_completed_job_spans_survive_worker_death(self):
        """Spans ship per-result, so jobs done *before* the kill are kept."""
        import numpy as np

        from tests.test_procops_faults import fresh_ops, kill_worker

        rec = trace.install(capacity=4096)
        ops = fresh_ops()
        try:
            rng = np.random.default_rng(3)
            a, b = rng.standard_normal((8, 8)), rng.standard_normal((8, 8))
            ops.matmul(a, b)
            before = sum(1 for ev in rec.events()
                         if ev[2].startswith("job:"))
            kill_worker(ops, 0)
            ops.matmul(a, b)
        finally:
            ops.shutdown()
            trace.uninstall()
        assert before > 0
        after = sum(1 for ev in rec.events() if ev[2].startswith("job:"))
        assert after > before


# --------------------------------------------------------------------------- #
# profiler: nesting-safe sections
# --------------------------------------------------------------------------- #
class TestProfilerNesting:
    def test_recursive_section_charges_once(self):
        from repro.ctf.profiler import Profiler

        prof = Profiler()
        with prof.section("work"):
            with prof.section("work"):
                time.sleep(0.02)
        charged = prof.seconds["work"]
        assert 0.015 <= charged < 0.04  # once, not doubled
        assert prof.counts["work"] == 2  # both entries still counted

    def test_distinct_categories_unaffected(self):
        from repro.ctf.profiler import Profiler

        prof = Profiler()
        with prof.section("outer"):
            with prof.section("inner"):
                time.sleep(0.01)
        assert prof.seconds["outer"] >= prof.seconds["inner"] > 0.0
        assert not prof._section_depth  # transient state fully unwound


# --------------------------------------------------------------------------- #
# scheduler / CLI surface
# --------------------------------------------------------------------------- #
class TestSchedulerTracing:
    def test_campaign_writes_per_run_traces(self, tmp_path):
        spec = tiny_spec(seed=5)
        registry = RunRegistry(tmp_path / "history")
        result = run_campaign([spec], registry=registry, workers=0,
                              trace_dir=tmp_path / "traces")
        assert result.ok
        trace_file = tmp_path / "traces" / f"{spec.run_id}.trace.json"
        payload = load_trace(str(trace_file))
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] in ("X", "i")}
        assert {"run", "sweep", "bond", "davidson"} <= names
        # the campaign process itself stays untraced
        assert trace.recorder() is None


class TestCLI:
    def test_bench_list_targets(self, capsys):
        assert main(["bench", "--list-targets"]) == 0
        out = capsys.readouterr().out
        assert "obs" in out and "matvec" in out

    def test_bench_unknown_target_rejected_with_list(self, capsys):
        assert main(["bench", "--target", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown bench target 'bogus'" in err
        assert "micro-kernels" in err

    def test_analyze_list_and_unknown_target(self, capsys):
        assert main(["analyze", "--list-targets"]) == 0
        assert "lint" in capsys.readouterr().out
        assert main(["analyze", "--target", "bogus"]) == 2
        assert "unknown analyze target" in capsys.readouterr().err

    def test_run_trace_produces_expected_spans(self, tmp_path, capsys):
        path = tmp_path / "run.trace.json"
        code = main(["run", "--model", "heisenberg-chain", "--param", "n=6",
                     "--maxdim", "8", "--nsweeps", "2",
                     "--backend", "sparse-dense", "--nodes", "2",
                     "--trace", str(path)])
        assert code == 0
        assert "trace saved" in capsys.readouterr().out
        payload = load_trace(str(path))
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] in ("X", "i")}
        assert {"run", "sweep", "bond", "davidson", "davidson-matvec",
                "svd"} <= names
        assert "matvec-stage" in names or "matvec" in names

    def test_trace_summarize_and_export(self, tmp_path, capsys):
        paths = []
        for i in range(2):
            p = tmp_path / f"t{i}.json"
            with trace.tracing(str(p)):
                with trace.span("sweep", "dmrg"):
                    pass
            paths.append(str(p))
        assert main(["trace", "summarize"] + paths) == 0
        assert "sweep" in capsys.readouterr().out
        merged = tmp_path / "merged.json"
        assert main(["trace", "export", *paths,
                     "--output", str(merged)]) == 0
        assert len(load_trace(str(merged))["traceEvents"]) > 0

    def test_trace_export_requires_output(self, tmp_path, capsys):
        p = tmp_path / "t.json"
        with trace.tracing(str(p)):
            pass
        assert main(["trace", "export", str(p)]) == 2

    def test_trace_summarize_rejects_non_trace_file(self, tmp_path):
        p = tmp_path / "nope.json"
        p.write_text("{}")
        with pytest.raises(ValueError):
            load_trace(str(p))


# --------------------------------------------------------------------------- #
# overhead benchmark plumbing
# --------------------------------------------------------------------------- #
class TestObsBench:
    def test_obs_benchmark_smoke(self):
        from repro.perf.obs_bench import (format_obs_benchmark,
                                          run_obs_overhead_benchmark)

        stats = run_obs_overhead_benchmark(nsites=10, maxdim=12, repeats=3,
                                           rounds=2, span_calls=5_000)
        assert stats["spans_per_apply"] > 0
        assert stats["disabled_ns_per_span"] > 0
        assert "tracer overhead" in format_obs_benchmark(stats).lower()
        assert trace.recorder() is None  # benchmark restores disabled state
