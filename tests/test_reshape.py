"""Tests for fusing and splitting block-sparse tensor modes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symmetry import (BlockSparseTensor, Index, fuse_modes, matricize,
                            split_mode)


def _dense_fuse(arr, groups):
    """Dense reference: permute modes and reshape each group into one axis."""
    perm = [ax for grp in groups for ax in grp]
    arr = np.transpose(arr, perm)
    shape = []
    pos = 0
    for grp in groups:
        size = 1
        for _ in grp:
            size *= arr.shape[pos]
            pos += 1
        shape.append(size)
    return arr.reshape(shape)


class TestFuseModes:
    def test_preserves_norm_and_nnz(self, random_tensor):
        fused, recs = fuse_modes(random_tensor, [[0, 1], [2]])
        assert fused.ndim == 2
        assert len(recs) == 1
        assert fused.norm() == pytest.approx(random_tensor.norm())

    def test_total_dimension_preserved(self, random_tensor):
        fused, _ = fuse_modes(random_tensor, [[0, 1], [2]])
        d0 = random_tensor.indices[0].dim * random_tensor.indices[1].dim
        assert fused.indices[0].dim == d0
        assert fused.indices[1].dim == random_tensor.indices[2].dim

    def test_groups_must_partition(self, random_tensor):
        with pytest.raises(ValueError):
            fuse_modes(random_tensor, [[0, 1]])
        with pytest.raises(ValueError):
            fuse_modes(random_tensor, [[0, 1], [1, 2]])

    def test_singleton_groups_pass_through(self, random_tensor):
        fused, recs = fuse_modes(random_tensor, [[0], [1], [2]])
        assert recs == []
        assert fused.indices == random_tensor.indices
        assert fused.norm() == pytest.approx(random_tensor.norm())

    def test_matches_dense_reshape_up_to_permutation(self, random_tensor):
        """Every dense element must survive the fuse (as a multiset)."""
        fused, _ = fuse_modes(random_tensor, [[0, 2], [1]])
        dense_in = random_tensor.to_dense()
        dense_out = fused.to_dense()
        assert dense_out.shape == _dense_fuse(dense_in, [[0, 2], [1]]).shape
        assert np.sort(np.abs(dense_out).ravel()) == pytest.approx(
            np.sort(np.abs(dense_in).ravel()))

    def test_charge_conservation_of_fused_blocks(self, random_tensor):
        fused, _ = fuse_modes(random_tensor, [[0, 1], [2]], flows=[1, -1])
        for key in fused.blocks:
            assert fused.key_allowed(key)


class TestSplitMode:
    def test_round_trip_identity(self, random_tensor):
        fused, recs = fuse_modes(random_tensor, [[0, 1], [2]])
        restored = split_mode(fused, 0, recs[0])
        assert restored.shape == random_tensor.shape
        assert np.allclose(restored.to_dense(), random_tensor.to_dense())

    def test_round_trip_last_axis(self, random_tensor):
        fused, recs = fuse_modes(random_tensor, [[0], [1, 2]])
        restored = split_mode(fused, 1, recs[0])
        assert restored.shape == random_tensor.shape
        assert np.allclose(restored.to_dense(), random_tensor.to_dense())

    def test_wrong_index_rejected(self, random_tensor):
        fused, recs = fuse_modes(random_tensor, [[0, 1], [2]])
        with pytest.raises(ValueError):
            split_mode(fused, 1, recs[0])

    def test_split_after_contraction(self, small_indices, rng):
        """Fused bonds on neighbouring tensors stay contractible and splittable."""
        i1, i2, i3 = small_indices
        a = BlockSparseTensor.random((i1, i2, i3), flux=(0,), rng=rng)
        b = BlockSparseTensor.random((i3.dual(), i2.dual(), i1.dual()),
                                     flux=(0,), rng=rng)
        fa, recs_a = fuse_modes(a, [[0, 1], [2]], flows=[1, -1])
        # fuse b's legs in the same (i1, i2) order so offsets line up
        fb, _ = fuse_modes(b, [[2, 1], [0]], flows=[-1, 1])
        # fa's fused mode and fb's fused mode cover the same (i1, i2) space
        assert fa.indices[0].same_space(fb.indices[0])
        res = fa.contract(fb, axes=([0], [0]))
        ref = a.contract(b, axes=([0, 1], [2, 1]))
        assert np.allclose(res.to_dense(), ref.to_dense())


class TestMatricize:
    def test_matrix_shape(self, random_tensor):
        mat, row_rec, col_rec = matricize(random_tensor, row_axes=[0, 1])
        assert mat.ndim == 2
        assert row_rec is not None and col_rec is None
        d0 = random_tensor.indices[0].dim * random_tensor.indices[1].dim
        assert mat.shape == (d0, random_tensor.indices[2].dim)

    def test_norm_preserved(self, random_tensor):
        mat, _, _ = matricize(random_tensor, row_axes=[0], col_axes=[1, 2])
        assert mat.norm() == pytest.approx(random_tensor.norm())

    def test_invalid_partition(self, random_tensor):
        with pytest.raises(ValueError):
            matricize(random_tensor, row_axes=[0], col_axes=[1])


@st.composite
def _block_tensor(draw):
    """A random small rank-3 U(1) block tensor."""
    nsec = draw(st.integers(min_value=1, max_value=3))
    charges = draw(st.lists(st.integers(min_value=-2, max_value=2),
                            min_size=nsec, max_size=nsec, unique=True))
    dims = draw(st.lists(st.integers(min_value=1, max_value=3),
                         min_size=nsec, max_size=nsec))
    i1 = Index([(c,) for c in charges], dims, flow=1)
    i2 = Index([(0,), (1,)], [2, 1], flow=1)
    i3 = Index([(c,) for c in sorted({c + d for c in charges for d in (0, 1)})],
               [2] * len({c + d for c in charges for d in (0, 1)}), flow=-1)
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    t = BlockSparseTensor.random((i1, i2, i3), flux=(0,),
                                 rng=np.random.default_rng(seed))
    return t


class TestFuseSplitProperties:
    @settings(max_examples=25, deadline=None)
    @given(t=_block_tensor(), flow=st.sampled_from([1, -1]))
    def test_fuse_split_round_trip(self, t, flow):
        if t.num_blocks == 0:
            return
        fused, recs = fuse_modes(t, [[0, 1], [2]], flows=[flow, -1])
        assert fused.norm() == pytest.approx(t.norm())
        restored = split_mode(fused, 0, recs[0])
        assert np.allclose(restored.to_dense(), t.to_dense())

    @settings(max_examples=25, deadline=None)
    @given(t=_block_tensor())
    def test_fused_blocks_conserve_charge(self, t):
        fused, _ = fuse_modes(t, [[0, 2], [1]], flows=[1, 1])
        for key in fused.blocks:
            assert fused.key_allowed(key)
