"""Fault injection for the process executor: crashes, timeouts, recovery.

The pool's contract under failure: a worker killed mid-job is replaced, the
job is resubmitted and — kernels being deterministic — completes with a
bit-identical result; the incident is charged to the executor's profiler
under a custom category so run reports surface it; a job that fails on
every allowed attempt raises :class:`ExecutorError` instead of hanging; and
whatever happened, shutdown still unlinks every shared segment.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.ctf import shm
from repro.symmetry.procops import ExecutorError, ProcessOps


def fresh_ops(**kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("min_dispatch_flops", 0.0)
    kwargs.setdefault("min_pin_bytes", 0)
    return ProcessOps(**kwargs)


def kill_worker(ops, index):
    os.kill(ops._workers[index].process.pid, signal.SIGKILL)


class TestCrashRecovery:
    def test_kill_mid_job_respawns_and_completes(self):
        ops = fresh_ops()
        try:
            # a sleep job parks worker 0; killing the worker mid-sleep must
            # not lose the job — the retry on the replacement completes it
            job = ops._submit("sleep", 0.25, worker=0)
            kill_worker(ops, 0)
            assert ops._wait(job) is None
            assert job.attempts == 2
            assert ops.respawns >= 1
            assert ops.profiler.breakdown().get("executor-crash", 0.0) > 0.0
            # the replacement worker is live and serves new jobs
            assert ops._wait(ops._submit("ping", None, worker=0)) == "pong"
        finally:
            ops.shutdown()

    def test_result_after_crash_is_bit_identical(self):
        ops = fresh_ops()
        try:
            rng = np.random.default_rng(4)
            a, b = rng.standard_normal((20, 15)), rng.standard_normal((15, 9))
            want = a @ b
            for index in range(len(ops._workers) or 1):
                ops._ensure_started()
                kill_worker(ops, index)
                np.testing.assert_array_equal(ops.matmul(a, b), want)
            assert ops.respawns >= 1
        finally:
            ops.shutdown()

    def test_gives_up_after_max_attempts(self):
        ops = fresh_ops()
        ops.max_attempts = 1  # no retries: the first crash is fatal
        try:
            job = ops._submit("sleep", 0.25, worker=0)
            kill_worker(ops, 0)
            with pytest.raises(ExecutorError, match="crash"):
                ops._wait(job)
            assert ops.failures >= 1
            # the pool itself survives the failed job
            assert ops._wait(ops._submit("ping", None)) == "pong"
        finally:
            ops.shutdown()


class TestTimeoutPath:
    def test_stuck_worker_is_killed_and_job_errors(self):
        ops = fresh_ops(job_timeout=0.2)
        try:
            job = ops._submit("sleep", 30.0)  # far beyond the timeout
            with pytest.raises(ExecutorError, match="timeout"):
                ops._wait(job)
            assert ops.timeouts >= 1
            assert ops.respawns >= 1
            assert ops.profiler.breakdown().get("executor-timeout",
                                                0.0) > 0.0
            assert ops._wait(ops._submit("ping", None)) == "pong"
        finally:
            ops.shutdown()

    def test_fast_jobs_unaffected_by_timeout_config(self):
        ops = fresh_ops(job_timeout=5.0)
        try:
            rng = np.random.default_rng(5)
            a, b = rng.standard_normal((12, 12)), rng.standard_normal((12, 12))
            np.testing.assert_array_equal(ops.matmul(a, b), a @ b)
            assert ops.timeouts == 0
        finally:
            ops.shutdown()


class TestWorkerErrorReporting:
    def test_kernel_exception_is_reported_not_fatal(self):
        ops = fresh_ops()
        try:
            job = ops._submit("no-such-kind", None)
            with pytest.raises(ExecutorError, match="ValueError"):
                ops._wait(job)
            # the worker reported the error and kept running
            assert ops.respawns == 0
            assert ops._wait(ops._submit("ping", None)) == "pong"
        finally:
            ops.shutdown()


class TestDMRGSurvivesWorkerDeath:
    def test_energy_bit_identical_after_pre_run_kill(self):
        """A worker dead before the sweep is discovered and replaced."""
        from repro.backends import ListBackend
        from repro.ctf import BLUE_WATERS, SimWorld
        from repro.dmrg import DMRGConfig, Sweeps, dmrg
        from repro.models import heisenberg_chain_model
        from repro.mps import MPS, build_mpo
        from repro.symmetry import BlockOps

        lattice, sites, opsum, config_state = heisenberg_chain_model(8)
        mpo = build_mpo(opsum, sites, compress=True)
        psi0 = MPS.product_state(sites, config_state)
        config = DMRGConfig(sweeps=Sweeps.fixed(16, 2, cutoff=1e-10))

        world = SimWorld(nodes=4, procs_per_node=16, machine=BLUE_WATERS)
        res_np, _ = dmrg(mpo, psi0, config,
                         backend=ListBackend(world, block_ops=BlockOps()),
                         rng=np.random.default_rng(3))

        ops = fresh_ops()
        try:
            ops._ensure_started()
            kill_worker(ops, 0)
            world = SimWorld(nodes=4, procs_per_node=16,
                             machine=BLUE_WATERS)
            res_proc, _ = dmrg(mpo, psi0, config,
                               backend=ListBackend(world, block_ops=ops),
                               rng=np.random.default_rng(3))
            assert res_proc.energy == res_np.energy
            assert ops.respawns >= 1
        finally:
            ops.shutdown()


class TestShutdownHygiene:
    def test_shutdown_after_crash_unlinks_everything(self):
        ops = fresh_ops()
        rng = np.random.default_rng(6)
        pinned = ops.prepare(rng.standard_normal((16, 16)))
        ops.matmul(pinned, np.asarray(pinned))
        kill_worker(ops, 0)
        created = set(ops._shm.segment_names())
        assert created
        ops.shutdown()
        assert ops._shm.segment_names() == ()
        assert not (created & set(shm.live_segment_names()))

    def test_shutdown_is_idempotent(self):
        ops = fresh_ops()
        ops._wait(ops._submit("ping", None))
        ops.shutdown()
        ops.shutdown()
        assert ops._workers == []
