"""Tests for single-site DMRG with subspace expansion."""

import numpy as np
import pytest

from repro.backends import ListBackend
from repro.dmrg import (DMRGConfig, Sweeps, run_dmrg, run_single_site_dmrg,
                        single_site_dmrg)
from repro.ed import ground_state_energy
from repro.models import (heisenberg_chain_model, hubbard_chain_model,
                          tfim_exact_energy_open_chain, tfim_model)
from repro.mps import MPS, build_mpo


@pytest.fixture(scope="module")
def heisenberg8():
    _, sites, opsum, config = heisenberg_chain_model(8)
    mpo = build_mpo(opsum, sites)
    psi0 = MPS.product_state(sites, config)
    exact = ground_state_energy(opsum, sites,
                                charge=sites.total_charge(config))
    return sites, opsum, mpo, psi0, exact


class TestSingleSiteDMRG:
    def test_matches_exact_diagonalization(self, heisenberg8):
        _, _, mpo, psi0, exact = heisenberg8
        result, psi = run_single_site_dmrg(mpo, psi0, maxdim=64, nsweeps=10)
        assert result.energy == pytest.approx(exact, abs=1e-6)

    def test_subspace_expansion_grows_bond_dimension(self, heisenberg8):
        _, _, mpo, psi0, _ = heisenberg8
        # without expansion, a product state cannot grow beyond bond dim 1
        sweeps = Sweeps.fixed(32, 3, cutoff=1e-12)
        config = DMRGConfig(sweeps=sweeps)
        res_no, psi_no = single_site_dmrg(mpo, psi0, config,
                                          expansion_alphas=[0.0, 0.0, 0.0])
        res_yes, psi_yes = single_site_dmrg(mpo, psi0, config,
                                            expansion_alphas=[1e-2] * 3)
        assert psi_no.max_bond_dimension() == 1
        assert psi_yes.max_bond_dimension() > 1
        assert res_yes.energy < res_no.energy - 1e-3

    def test_matches_two_site_energy(self, heisenberg8):
        _, _, mpo, psi0, exact = heisenberg8
        res1, _ = run_single_site_dmrg(mpo, psi0, maxdim=48, nsweeps=10)
        res2, _ = run_dmrg(mpo, psi0, maxdim=48, nsweeps=6)
        assert res1.energy == pytest.approx(res2.energy, abs=1e-5)
        assert res1.energy == pytest.approx(exact, abs=1e-5)

    def test_respects_bond_dimension_cap(self, heisenberg8):
        _, _, mpo, psi0, _ = heisenberg8
        result, psi = run_single_site_dmrg(mpo, psi0, maxdim=8, nsweeps=6)
        assert psi.max_bond_dimension() <= 8

    def test_energy_monotonically_improves_across_sweeps(self, heisenberg8):
        _, _, mpo, psi0, _ = heisenberg8
        result, _ = run_single_site_dmrg(mpo, psi0, maxdim=32, nsweeps=8)
        energies = np.array(result.energies)
        # allow tiny non-monotonicity from the expansion perturbation
        assert np.all(np.diff(energies) < 1e-6)

    def test_alpha_schedule_length_validated(self, heisenberg8):
        _, _, mpo, psi0, _ = heisenberg8
        config = DMRGConfig(sweeps=Sweeps.fixed(16, 2))
        with pytest.raises(ValueError):
            single_site_dmrg(mpo, psi0, config, expansion_alphas=[0.01])

    def test_needs_two_sites(self, heisenberg8):
        sites, _, mpo, psi0, _ = heisenberg8
        from repro.mps import SiteSet, SpinHalfSite
        one_sites = SiteSet.uniform(SpinHalfSite(), 1)
        one = MPS.product_state(one_sites, ["Up"])
        from repro.mps.autompo import build_mpo as _bm
        from repro.mps import OpSum
        os1 = OpSum().add(1.0, "Sz", 0)
        mpo1 = _bm(os1, one_sites)
        with pytest.raises(ValueError):
            single_site_dmrg(mpo1, one, DMRGConfig(sweeps=Sweeps.fixed(4, 1)))

    def test_works_with_list_backend(self, heisenberg8):
        _, _, mpo, psi0, exact = heisenberg8
        from repro.ctf import SimWorld
        backend = ListBackend(SimWorld(nodes=2, procs_per_node=4))
        result, _ = run_single_site_dmrg(mpo, psi0, maxdim=32, nsweeps=8,
                                         backend=backend)
        assert result.energy == pytest.approx(exact, abs=1e-5)


class TestSingleSiteCompiledMatvec:
    """The 3-stage chain is compiled like the two-site/excited drivers."""

    def test_compiled_path_engages_and_matches_chained(self, heisenberg8):
        _, _, mpo, psi0, exact = heisenberg8
        sweeps = Sweeps.ramp(32, 6, cutoff=1e-12)

        res_on, _ = single_site_dmrg(mpo, psi0,
                                     DMRGConfig(sweeps=sweeps,
                                                compile_matvec=True))
        res_off, _ = single_site_dmrg(mpo, psi0,
                                      DMRGConfig(sweeps=sweeps,
                                                 compile_matvec=False))
        assert res_on.energy == pytest.approx(res_off.energy, abs=1e-10)
        assert res_on.energy == pytest.approx(exact, abs=1e-5)

    def test_kill_switch_and_counters(self, heisenberg8):
        _, _, mpo, psi0, _ = heisenberg8
        from repro.backends import DirectBackend

        sweeps = Sweeps.ramp(24, 4, cutoff=1e-12)
        on = DirectBackend()
        # program_cache=False pins the per-visit compile/release lifecycle
        # this test asserts; the sweep-persistent cache is covered in
        # tests/test_compile_cache.py
        single_site_dmrg(mpo, psi0, DMRGConfig(sweeps=sweeps,
                                               compile_matvec=True,
                                               program_cache=False),
                         backend=on)
        snap_on = on.matvec_counters.snapshot()
        assert snap_on["compiles"] > 0
        assert snap_on["compiled_applies"] > 0
        assert snap_on["releases"] == snap_on["compiles"]

        off = DirectBackend()
        single_site_dmrg(mpo, psi0, DMRGConfig(sweeps=sweeps,
                                               compile_matvec=False),
                         backend=off)
        snap_off = off.matvec_counters.snapshot()
        assert snap_off["compiles"] == 0
        assert snap_off["compiled_applies"] == 0

    def test_modelled_costs_identical_on_sim_backend(self, heisenberg8):
        """Compiled stages replay the chained path's charges exactly."""
        _, _, mpo, psi0, _ = heisenberg8
        from repro.backends import make_backend
        from repro.ctf import SimWorld

        totals = {}
        layouts = {}
        for compile_matvec in (True, False):
            world = SimWorld(nodes=2, procs_per_node=4)
            backend = make_backend("sparse-sparse", world)
            config = DMRGConfig(sweeps=Sweeps.ramp(24, 4, cutoff=1e-12),
                                compile_matvec=compile_matvec)
            single_site_dmrg(mpo, psi0, config, backend=backend)
            totals[compile_matvec] = world.profiler.total_seconds()
            layouts[compile_matvec] = world.layout_tracker.snapshot()
        assert totals[True] == totals[False]
        assert layouts[True] == layouts[False]


class TestSingleSiteOtherModels:
    def test_tfim_chain(self):
        n = 8
        _, sites, opsum, config = tfim_model(n, h=1.0)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        result, _ = run_single_site_dmrg(mpo, psi0, maxdim=32, nsweeps=8)
        assert result.energy == pytest.approx(
            tfim_exact_energy_open_chain(n, h=1.0), abs=1e-6)

    def test_hubbard_chain(self):
        _, sites, opsum, config = hubbard_chain_model(4, u=4.0)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config))
        result, _ = run_single_site_dmrg(mpo, psi0, maxdim=48, nsweeps=10)
        assert result.energy == pytest.approx(exact, abs=1e-5)
