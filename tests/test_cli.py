"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_params, build_parser, main
from repro.dmrg import load_mps
from repro.ed import ground_state_energy
from repro.models import build_model


class TestParamParsing:
    def test_numeric_coercion(self):
        params = _parse_params(["n=12", "j2=0.5", "label=test"])
        assert params == {"n": 12, "j2": 0.5, "label": "test"}

    def test_invalid_pair_rejected(self):
        with pytest.raises(ValueError):
            _parse_params(["n12"])


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--model", "tfim"])
        assert args.engine == "two-site"
        assert args.backend == "direct"
        assert args.maxdim == 64

    def test_models_subcommand(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "spins" in out
        assert "electrons" in out


class TestRunCommand:
    def test_ground_state_run_matches_ed(self, capsys, tmp_path):
        out_json = tmp_path / "report.json"
        state_file = tmp_path / "state.npz"
        code = main(["run", "--model", "heisenberg-chain", "--param", "n=8",
                     "--maxdim", "48", "--nsweeps", "6",
                     "--measure", "Sz",
                     "--output", str(out_json),
                     "--save-state", str(state_file)])
        assert code == 0
        report = json.loads(out_json.read_text())
        _, sites, opsum, config = build_model("heisenberg-chain", n=8)
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config))
        assert report["energies"][0] == pytest.approx(exact, abs=1e-6)
        assert "Sz" in report["profiles"]
        # the saved state reloads onto the same site set
        psi = load_mps(state_file, sites)
        assert len(psi) == 8

    def test_single_site_engine(self, capsys):
        code = main(["run", "--model", "heisenberg-chain", "--param", "n=6",
                     "--engine", "single-site", "--maxdim", "32",
                     "--nsweeps", "8"])
        assert code == 0
        assert "energy" in capsys.readouterr().out

    def test_excited_engine_reports_gap(self, capsys):
        code = main(["run", "--model", "heisenberg-chain", "--param", "n=6",
                     "--engine", "excited", "--nstates", "2",
                     "--maxdim", "32", "--nsweeps", "6"])
        assert code == 0
        assert "gap" in capsys.readouterr().out

    def test_distributed_backend_reports_modelled_time(self, capsys):
        code = main(["run", "--model", "heisenberg-chain", "--param", "n=6",
                     "--backend", "list", "--nodes", "2",
                     "--procs-per-node", "4", "--maxdim", "24",
                     "--nsweeps", "4"])
        assert code == 0
        assert "modelled time" in capsys.readouterr().out

    def test_unknown_model_fails_gracefully(self, capsys):
        assert main(["run", "--model", "does-not-exist"]) == 2
        assert "error" in capsys.readouterr().err
