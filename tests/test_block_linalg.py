"""Unit tests for block-wise SVD / QR and truncation bookkeeping."""

import numpy as np
import pytest

from repro.symmetry import BlockSparseTensor, Index, qr, svd
from repro.symmetry.linalg import spectrum_tensor


@pytest.fixture
def tensor(rng):
    i1 = Index([(0,), (1,)], [3, 4], flow=1)
    i2 = Index([(0,), (1,)], [2, 2], flow=1)
    i3 = Index([(-1,), (0,), (1,), (2,)], [2, 3, 3, 2], flow=-1)
    return BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)


class TestSVD:
    def test_exact_reconstruction(self, tensor):
        u, s, vh, info = svd(tensor, row_axes=[0, 1], absorb="left")
        rec = u.contract(vh, axes=([2], [0]))
        assert np.allclose(rec.to_dense(), tensor.to_dense())
        assert info.truncation_error < 1e-12

    def test_isometry_of_u(self, tensor):
        u, s, vh, _ = svd(tensor, row_axes=[0, 1], absorb="right")
        uu = u.conj().contract(u, axes=([0, 1], [0, 1]))
        assert np.allclose(uu.to_dense(), np.eye(uu.shape[0]))

    def test_isometry_of_vh(self, tensor):
        u, s, vh, _ = svd(tensor, row_axes=[0, 1], absorb="left")
        vv = vh.contract(vh.conj(), axes=([1], [1]))
        assert np.allclose(vv.to_dense(), np.eye(vv.shape[0]))

    def test_truncation_by_max_dim(self, tensor):
        u, s, vh, info = svd(tensor, row_axes=[0, 1], max_dim=3, absorb="right")
        assert info.kept_dim <= 3
        rec = u.contract(vh, axes=([2], [0]))
        err = (np.linalg.norm(rec.to_dense() - tensor.to_dense()) /
               np.linalg.norm(tensor.to_dense())) ** 2
        assert err == pytest.approx(info.truncation_error, rel=1e-6, abs=1e-12)

    def test_singular_values_match_dense(self, tensor):
        _, s, _, _ = svd(tensor, row_axes=[0, 1])
        mine = np.sort(s.all_values())[::-1]
        dense = tensor.to_dense().reshape(tensor.shape[0] * tensor.shape[1],
                                          tensor.shape[2])
        ref = np.linalg.svd(dense, compute_uv=False)
        ref = ref[ref > 1e-12]
        assert np.allclose(mine[:len(ref)], ref, atol=1e-10)

    def test_cutoff_discards_weight(self, tensor):
        _, _, _, info = svd(tensor, row_axes=[0, 1], cutoff=1e-2)
        assert info.truncation_error <= 1e-2 + 1e-12

    def test_svd_min_floor(self, tensor):
        _, s, _, _ = svd(tensor, row_axes=[0, 1], svd_min=1e-1)
        assert (s.all_values() >= 1e-1).all()

    def test_absorb_none_reconstruction(self, tensor):
        u, s, vh, _ = svd(tensor, row_axes=[0, 1])
        smat = spectrum_tensor(s)
        rec = u.contract(smat, axes=([2], [0])).contract(vh, axes=([2], [0]))
        assert np.allclose(rec.to_dense(), tensor.to_dense())

    def test_invalid_absorb(self, tensor):
        with pytest.raises(ValueError):
            svd(tensor, row_axes=[0, 1], absorb="both")

    def test_bad_partition(self, tensor):
        with pytest.raises(ValueError):
            svd(tensor, row_axes=[0], col_axes=[1])

    def test_spectrum_entropy_nonnegative(self, tensor):
        _, s, _, _ = svd(tensor, row_axes=[0, 1])
        assert s.entanglement_entropy() >= 0.0

    def test_new_bond_flux_convention(self, tensor):
        """U carries zero flux; Vh carries the flux of the input tensor."""
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        t = BlockSparseTensor.random([i1, i2], flux=(1,),
                                     rng=np.random.default_rng(0))
        u, _, vh, _ = svd(t, row_axes=[0], absorb="right")
        assert u.flux == (0,)
        assert vh.flux == (1,)


class TestQR:
    def test_reconstruction(self, tensor):
        q, r = qr(tensor, row_axes=[0, 1])
        rec = q.contract(r, axes=([2], [0]))
        assert np.allclose(rec.to_dense(), tensor.to_dense())

    def test_q_isometry(self, tensor):
        q, _ = qr(tensor, row_axes=[0, 1])
        qq = q.conj().contract(q, axes=([0, 1], [0, 1]))
        assert np.allclose(qq.to_dense(), np.eye(qq.shape[0]))

    def test_row_cols_partition_checked(self, tensor):
        with pytest.raises(ValueError):
            qr(tensor, row_axes=[0], col_axes=[1])

    def test_single_row_axis(self, tensor):
        q, r = qr(tensor, row_axes=[0])
        rec = q.contract(r, axes=([1], [0]))
        assert np.allclose(rec.to_dense(), tensor.to_dense())
