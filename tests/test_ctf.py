"""Tests for the simulated Cyclops framework: distributions, tensors, machine
model, profiler (including hypothesis property tests on the distribution)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ctf import (BLUE_WATERS, LAPTOP, MACHINES, STAMPEDE2, CATEGORIES,
                       CommCost, DistTensor, Distribution, Profiler,
                       SimWorld, SparseDistTensor, blockwise_contraction_comm,
                       dense_contraction_comm, distributed_qr, distributed_svd,
                       factor_processor_grid, load_imbalance_fraction,
                       parallel_gemm_efficiency, sparse_contraction_comm)
from repro.ctf.linalg import distributed_eigh, matricize


class TestDistribution:
    def test_grid_factorization_covers_procs(self):
        grid = factor_processor_grid(12, (100, 50, 10))
        assert int(np.prod(grid)) == 12

    def test_owner_in_range(self):
        dist = Distribution.build((7, 5), 6)
        for i in range(7):
            for j in range(5):
                assert 0 <= dist.owner((i, j)) < dist.nprocs

    def test_every_element_owned_once(self):
        dist = Distribution.build((6, 9), 4)
        counts = np.zeros(dist.nprocs, dtype=int)
        for i in range(6):
            for j in range(9):
                counts[dist.owner((i, j))] += 1
        assert counts.sum() == dist.size
        assert counts.max() == dist.max_local_size()

    def test_local_shapes_sum_to_total(self):
        dist = Distribution.build((8, 6, 5), 8)
        total = sum(dist.local_size(r) for r in range(dist.nprocs))
        assert total == dist.size

    def test_imbalance_at_least_one(self):
        dist = Distribution.build((7, 3), 4)
        assert dist.imbalance() >= 1.0

    def test_bad_rank_rejected(self):
        dist = Distribution.build((4, 4), 4)
        with pytest.raises(ValueError):
            dist.grid_coords(100)

    def test_out_of_bounds_index(self):
        dist = Distribution.build((4, 4), 4)
        with pytest.raises(ValueError):
            dist.owner((5, 0))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 64),
           st.lists(st.integers(1, 12), min_size=1, max_size=4))
    def test_property_grid_product_and_coverage(self, nprocs, shape):
        """The processor grid always multiplies to nprocs and local sizes
        partition the tensor."""
        dist = Distribution.build(tuple(shape), nprocs)
        assert dist.nprocs == nprocs
        assert sum(dist.local_size(r) for r in range(nprocs)) == dist.size


class TestDistTensor:
    def test_contract_matches_numpy(self, rng):
        w = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        a = DistTensor.random((6, 7, 8), w, rng)
        b = DistTensor.random((8, 7, 3), w, rng)
        c = a.contract(b, axes=([2, 1], [0, 1]))
        ref = np.tensordot(a.to_numpy(), b.to_numpy(), axes=([2, 1], [0, 1]))
        assert np.allclose(c.to_numpy(), ref)
        assert w.profiler.flops > 0

    def test_local_parts_cover_tensor(self, rng):
        w = SimWorld(nodes=1, procs_per_node=6, machine=LAPTOP)
        a = DistTensor.random((9, 4), w, rng)
        total = sum(a.local_part(r).size for r in range(w.nprocs))
        assert total == a.size

    def test_arithmetic(self, rng):
        w = SimWorld()
        a = DistTensor.random((4, 4), w, rng)
        b = DistTensor.random((4, 4), w, rng)
        assert np.allclose((a + b).to_numpy(), a.to_numpy() + b.to_numpy())
        assert np.allclose((a - b).to_numpy(), a.to_numpy() - b.to_numpy())
        assert np.allclose((2.0 * a).to_numpy(), 2.0 * a.to_numpy())
        assert a.norm() == pytest.approx(np.linalg.norm(a.to_numpy()))

    def test_transpose_and_redistribute_charge_comm(self, rng):
        w = SimWorld(nodes=2, procs_per_node=4, machine=BLUE_WATERS)
        a = DistTensor.random((5, 6, 7), w, rng)
        a.transpose([2, 0, 1])
        a.redistribute()
        assert w.profiler.comm_words > 0

    def test_different_worlds_rejected(self, rng):
        a = DistTensor.random((3, 3), SimWorld(), rng)
        b = DistTensor.random((3, 3), SimWorld(), rng)
        with pytest.raises(ValueError):
            a.contract(b, axes=([1], [0]))


class TestSparseDistTensor:
    def test_roundtrip(self, rng):
        w = SimWorld()
        dense = np.where(rng.random((5, 6)) > 0.6, rng.standard_normal((5, 6)), 0.0)
        s = SparseDistTensor.from_dense(dense, w)
        assert np.allclose(s.to_dense(), dense)
        assert s.nnz == np.count_nonzero(dense)
        assert 0 <= s.fill_fraction <= 1

    def test_contract_matches_dense(self, rng):
        w = SimWorld(nodes=2, procs_per_node=2, machine=STAMPEDE2)
        da = np.where(rng.random((6, 5, 4)) > 0.5, rng.standard_normal((6, 5, 4)), 0.0)
        db = np.where(rng.random((4, 5, 3)) > 0.5, rng.standard_normal((4, 5, 3)), 0.0)
        a = SparseDistTensor.from_dense(da, w)
        b = SparseDistTensor.from_dense(db, w)
        c = a.contract(b, axes=([2, 1], [0, 1]))
        assert np.allclose(c.to_dense(), np.tensordot(da, db, axes=([2, 1], [0, 1])))
        assert w.profiler.flops >= 0

    def test_empty_sparse_contraction(self):
        w = SimWorld()
        a = SparseDistTensor((3, 4), np.zeros((0, 2)), np.zeros(0), w)
        b = SparseDistTensor((4, 2), np.zeros((0, 2)), np.zeros(0), w)
        c = a.contract(b, axes=([1], [0]))
        assert c.nnz == 0

    def test_owner_of_nonzeros(self, rng):
        w = SimWorld(nodes=1, procs_per_node=4, machine=LAPTOP)
        dense = rng.standard_normal((6, 6))
        s = SparseDistTensor.from_dense(dense, w)
        for k in range(min(10, s.nnz)):
            assert 0 <= s.owner_of(k) < w.nprocs


class TestDistributedLinalg:
    def test_svd(self, rng):
        w = SimWorld(nodes=2, procs_per_node=8, machine=BLUE_WATERS)
        mat = rng.standard_normal((20, 12))
        u, s, vh = distributed_svd(mat, w)
        assert np.allclose(u @ np.diag(s) @ vh, mat, atol=1e-10)
        assert w.profiler.seconds["svd"] > 0

    def test_qr_and_eigh(self, rng):
        w = SimWorld()
        mat = rng.standard_normal((10, 6))
        q, r = distributed_qr(mat, w)
        assert np.allclose(q @ r, mat, atol=1e-10)
        sym = mat @ mat.T
        evals, evecs = distributed_eigh(sym, w)
        assert np.allclose(evecs @ np.diag(evals) @ evecs.T, sym, atol=1e-8)

    def test_matricize(self, rng):
        w = SimWorld()
        t = DistTensor.random((3, 4, 5), w, rng)
        m = matricize(t, [0, 1], [2])
        assert m.shape == (12, 5)


class TestMachineAndBSP:
    def test_machine_presets(self):
        assert set(MACHINES) == {"blue-waters", "stampede2", "laptop"}
        assert BLUE_WATERS.memory_bytes_per_node() == pytest.approx(64e9)

    def test_gemm_seconds_scale_with_nodes(self):
        t1 = BLUE_WATERS.gemm_seconds(1e12, 1)
        t16 = BLUE_WATERS.gemm_seconds(1e12, 16)
        assert t16 == pytest.approx(t1 / 16)

    def test_comm_includes_latency(self):
        t = STAMPEDE2.comm_seconds(0.0, 4, supersteps=10)
        assert t == pytest.approx(10 * STAMPEDE2.network_latency_us * 1e-6)

    def test_with_overrides(self):
        m = LAPTOP.with_overrides(gemm_gflops_per_node=1.0)
        assert m.gemm_gflops_per_node == 1.0
        assert LAPTOP.gemm_gflops_per_node != 1.0

    def test_bsp_comm_scaling(self):
        dense = dense_contraction_comm(1e6, 1e6, 1e6, 64)
        sparse = sparse_contraction_comm(1e6, 1e6, 1e6, 64)
        block = blockwise_contraction_comm(1e6, 1e6, 1e6, 64)
        # Table II: dense/list move ~M/p^(2/3), sparse ~M/p^(1/2) (more words)
        assert dense.words < sparse.words
        assert block.supersteps == 1.0
        assert isinstance(dense + sparse, CommCost)

    def test_gemm_efficiency_monotone(self):
        small = parallel_gemm_efficiency(1e5, 256)
        large = parallel_gemm_efficiency(1e12, 256)
        assert small < large <= 1.0

    def test_imbalance_fraction_bounds(self):
        assert load_imbalance_fraction(0, 1.0, 4) == 0.0
        assert 0.0 <= load_imbalance_fraction(10, 0.5, 64) <= 0.6


class TestProfilerAndWorld:
    def test_categories_and_breakdown(self):
        p = Profiler()
        p.add("gemm", 3.0)
        p.add("svd", 1.0)
        bd = p.breakdown()
        assert set(bd) == set(CATEGORIES)
        assert bd["gemm"] == pytest.approx(75.0)
        assert p.total_seconds() == pytest.approx(4.0)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            Profiler().add("disk", 1.0)
        with pytest.raises(ValueError):
            Profiler().add("gemm", -1.0)

    def test_merge_and_reset(self):
        a, b = Profiler(), Profiler()
        a.add("gemm", 1.0)
        b.add("svd", 2.0)
        b.add_flops(10.0)
        a.merge(b)
        assert a.total_seconds() == pytest.approx(3.0)
        assert a.flops == 10.0
        a.reset()
        assert a.total_seconds() == 0.0

    def test_section_context_manager(self):
        p = Profiler()
        with p.section("transposition"):
            sum(range(1000))
        assert p.seconds["transposition"] > 0

    def test_world_memory_check(self):
        w = SimWorld(nodes=2, procs_per_node=16, machine=BLUE_WATERS)
        assert w.fits_in_memory(1e9)          # 8 GB over 2 nodes
        assert not w.fits_in_memory(1e12)     # 8 TB does not fit
        assert w.nprocs == 32

    def test_world_invalid_config(self):
        with pytest.raises(ValueError):
            SimWorld(nodes=0)

    def test_charges_accumulate(self):
        w = SimWorld(nodes=4, procs_per_node=8, machine=STAMPEDE2)
        w.charge_dense_contraction(1e9, 1e6, 1e6, 1e6)
        w.charge_block_contraction(1e8, 1e5, 1e5, 1e5, num_blocks=10,
                                   largest_block_share=0.5)
        w.charge_sparse_contraction(1e7, 1e4, 1e4, 1e4)
        w.charge_svd(1000, 500)
        w.charge_redistribution(1e6)
        d = w.profiler.as_dict()
        assert d["total"] > 0
        assert d["flops"] > 0
        assert w.profiler.gflops_rate() > 0
