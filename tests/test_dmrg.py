"""Integration tests: DMRG engine (Davidson, environments, sweeps) versus ED."""

import numpy as np
import pytest

from repro.backends import DirectBackend
from repro.dmrg import (DMRGConfig, EffectiveHamiltonian, EnvironmentCache,
                        Sweeps, davidson, dmrg, run_dmrg, two_site_tensor)
from repro.ed import ground_state_energy
from repro.models import (heisenberg_chain_model, hubbard_chain_model,
                          j1j2_cylinder_model, tfim_exact_energy_open_chain,
                          tfim_model, triangular_hubbard_model)
from repro.mps import MPS, build_mpo
from repro.symmetry import BlockSparseTensor, Index


class TestDavidson:
    def _random_hermitian_problem(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        mat = rng.standard_normal((n, n))
        mat = (mat + mat.T) / 2
        ix = Index.trivial(n, nsym=0, flow=1)
        x0 = BlockSparseTensor.random([ix], rng=rng)

        def apply_h(x):
            vec = x.to_dense()
            return BlockSparseTensor.from_dense(mat @ vec, x.indices,
                                                require_symmetric=False)
        return mat, apply_h, x0

    def test_converges_to_smallest_eigenvalue(self):
        mat, apply_h, x0 = self._random_hermitian_problem()
        res = davidson(apply_h, x0, max_iterations=60, max_subspace=20,
                       tol=1e-9)
        exact = np.linalg.eigvalsh(mat)[0]
        assert res.eigenvalue == pytest.approx(exact, abs=1e-7)
        assert res.converged

    def test_eigenvector_residual(self):
        mat, apply_h, x0 = self._random_hermitian_problem(seed=3)
        res = davidson(apply_h, x0, max_iterations=80, max_subspace=25,
                       tol=1e-10)
        v = res.eigenvector.to_dense()
        assert np.linalg.norm(mat @ v - res.eigenvalue * v) < 1e-6

    def test_few_iterations_still_improve(self):
        mat, apply_h, x0 = self._random_hermitian_problem(seed=5)
        e0 = float(x0.inner(apply_h(x0)) / x0.inner(x0))
        res = davidson(apply_h, x0, max_iterations=2, max_subspace=4)
        assert res.eigenvalue <= e0 + 1e-12

    def test_zero_start_rejected(self):
        _, apply_h, x0 = self._random_hermitian_problem()
        with pytest.raises(ValueError):
            davidson(apply_h, x0 * 0.0)


class TestEnvironments:
    def test_full_contraction_gives_energy(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi = MPS.product_state(sites, spin_chain_problem["config"])
        psi.canonicalize(0)
        envs = EnvironmentCache(psi, mpo)
        heff = EffectiveHamiltonian(envs.left(0), mpo.tensors[0],
                                    mpo.tensors[1], envs.right(1),
                                    DirectBackend())
        x = two_site_tensor(psi, 0)
        energy = float(np.real(x.inner(heff.apply(x))))
        assert energy == pytest.approx(mpo.expectation(psi), abs=1e-10)

    def test_environment_memory_counter(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi = MPS.product_state(sites, spin_chain_problem["config"])
        psi.canonicalize(0)
        envs = EnvironmentCache(psi, mpo)
        envs.right(1)
        assert envs.memory_elements() > 0

    def test_invalidate_all(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi = MPS.product_state(sites, spin_chain_problem["config"])
        psi.canonicalize(0)
        envs = EnvironmentCache(psi, mpo)
        envs.right(0)
        envs.invalidate_all()
        assert envs.memory_elements() == 2 * 1  # only the trivial edges


class TestDMRGGroundStates:
    def test_heisenberg_chain(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi0 = MPS.product_state(sites, spin_chain_problem["config"])
        result, psi = run_dmrg(mpo, psi0, maxdim=64, nsweeps=7)
        assert result.energy == pytest.approx(spin_chain_problem["energy"],
                                              abs=1e-7)
        assert psi.norm() == pytest.approx(1.0)

    def test_energy_monotonically_decreases(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi0 = MPS.product_state(sites, spin_chain_problem["config"])
        result, _ = run_dmrg(mpo, psi0, maxdim=32, nsweeps=6)
        energies = result.energies
        assert all(energies[i + 1] <= energies[i] + 1e-8
                   for i in range(len(energies) - 1))

    def test_j1j2_small_cylinder(self):
        lat, sites, opsum, config = j1j2_cylinder_model(3, 3)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        result, _ = run_dmrg(mpo, psi0, maxdim=96, nsweeps=8)
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config))
        assert result.energy == pytest.approx(exact, abs=1e-6)

    def test_hubbard_chain(self):
        lat, sites, opsum, config = hubbard_chain_model(6, t=1.0, u=4.0)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        result, _ = run_dmrg(mpo, psi0, maxdim=128, nsweeps=9)
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config))
        assert result.energy == pytest.approx(exact, abs=1e-6)

    def test_tfim_dense_path(self):
        lat, sites, opsum, config = tfim_model(10, j=1.0, h=0.9)
        mpo = build_mpo(opsum, sites)
        psi0 = MPS.product_state(sites, config)
        result, _ = run_dmrg(mpo, psi0, maxdim=32, nsweeps=8)
        assert result.energy == pytest.approx(
            tfim_exact_energy_open_chain(10, 1.0, 0.9), abs=1e-7)

    def test_total_charge_is_conserved(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi0 = MPS.product_state(sites, spin_chain_problem["config"])
        _, psi = run_dmrg(mpo, psi0, maxdim=32, nsweeps=4)
        assert psi.total_charge() == sites.total_charge(
            spin_chain_problem["config"])

    def test_site_records_collected(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi0 = MPS.product_state(sites, spin_chain_problem["config"])
        config = DMRGConfig(sweeps=Sweeps.fixed(16, 2))
        result, _ = dmrg(mpo, psi0, config)
        n = len(sites)
        assert len(result.site_records) == 2 * 2 * (n - 1)
        assert all(r.flops > 0 for r in result.site_records)
        assert result.total_flops > 0
        assert result.total_seconds > 0

    def test_restricted_site_range(self, spin_chain_problem):
        """The paper's spin benchmark optimizes only the middle columns."""
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi0 = MPS.product_state(sites, spin_chain_problem["config"])
        config = DMRGConfig(sweeps=Sweeps.fixed(16, 2), site_ranges=[(2, 5)])
        result, _ = dmrg(mpo, psi0, config)
        touched = {r.site for r in result.site_records}
        assert touched == {2, 3, 4}

    def test_energy_tol_early_stop(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi0 = MPS.product_state(sites, spin_chain_problem["config"])
        config = DMRGConfig(sweeps=Sweeps.fixed(48, 12), energy_tol=1e-9)
        result, _ = dmrg(mpo, psi0, config)
        assert result.converged
        assert len(result.sweep_records) < 12

    def test_truncation_error_reported(self, spin_chain_problem):
        sites = spin_chain_problem["sites"]
        mpo = spin_chain_problem["mpo"]
        psi0 = MPS.product_state(sites, spin_chain_problem["config"])
        config = DMRGConfig(sweeps=Sweeps.fixed(4, 3))  # tiny m forces truncation
        result, _ = dmrg(mpo, psi0, config)
        assert max(r.max_truncation_error for r in result.sweep_records) > 0


class TestSweepsConfig:
    def test_ramp_schedule(self):
        s = Sweeps.ramp(64, 5, min_dim=8)
        assert s.maxdims == [8, 16, 32, 64, 64]
        assert len(s) == 5

    def test_fixed_schedule(self):
        s = Sweeps.fixed(32, 3, cutoff=1e-8)
        assert s.maxdims == [32, 32, 32]
        assert s.cutoffs == [1e-8] * 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Sweeps([8, 16], [1e-8], [3, 3])
