"""Tests for the contraction planner/executor and the hot-path bugfix sweep.

Covers the plan cache (hit/miss accounting, DMRG integration), the
equivalence of the planned/batched GEMM path with the naive Algorithm-2
block-pair loop across random index structures, and regression tests for the
dtype/truncation fixes that rode along with the planner PR.
"""

import numpy as np
import pytest

from repro.backends import DirectBackend
from repro.dmrg import DMRGConfig, Sweeps, dmrg
from repro.dmrg.davidson import _randomize_like
from repro.models import heisenberg_chain_model
from repro.mps import MPS, build_mpo
from repro.symmetry import (BlockSparseTensor, Index, PlanCache, build_plan,
                            contract_planned, execute_plan, svd,
                            tensor_signature)


# --------------------------------------------------------------------------- #
# random contraction instances
# --------------------------------------------------------------------------- #
def _random_index(rng: np.random.Generator, max_sectors: int = 3,
                  max_dim: int = 3) -> Index:
    ns = int(rng.integers(1, max_sectors + 1))
    sectors = [(int(q),) for q in rng.integers(-2, 3, size=ns)]
    dims = [int(d) for d in rng.integers(1, max_dim + 1, size=ns)]
    flow = 1 if rng.random() < 0.5 else -1
    return Index(sectors, dims, flow=flow)


def _random_case(rng: np.random.Generator):
    """A random contractable (a, b, axes) triple with shuffled mode order."""
    n_contr = int(rng.integers(1, 3))
    contr = [_random_index(rng) for _ in range(n_contr)]
    a_free = [_random_index(rng) for _ in range(int(rng.integers(1, 3)))]
    b_free = [_random_index(rng) for _ in range(int(rng.integers(1, 3)))]
    a_modes = a_free + contr
    b_modes = [ix.dual() for ix in contr] + b_free
    perm_a = list(rng.permutation(len(a_modes)))
    perm_b = list(rng.permutation(len(b_modes)))
    a = BlockSparseTensor.random([a_modes[p] for p in perm_a], flux=(0,),
                                 rng=rng)
    b = BlockSparseTensor.random([b_modes[p] for p in perm_b], flux=(0,),
                                 rng=rng)
    axes_a = [perm_a.index(len(a_free) + i) for i in range(n_contr)]
    axes_b = [perm_b.index(i) for i in range(n_contr)]
    return a, b, (axes_a, axes_b)


class TestPlannedContraction:
    def test_matches_naive_across_random_structures(self):
        """Property test: planner == Algorithm 2 over random index structures."""
        rng = np.random.default_rng(42)
        cache = PlanCache()
        checked = 0
        for _ in range(40):
            a, b, axes = _random_case(rng)
            ref = a.contract(b, axes)
            out = contract_planned(a, b, axes, cache=cache)
            assert np.allclose(out.to_dense(), ref.to_dense(), atol=1e-12)
            # a second execution must come from the cache and agree too
            hits0 = cache.hits
            again = contract_planned(a, b, axes, cache=cache)
            assert cache.hits == hits0 + 1
            assert np.allclose(again.to_dense(), ref.to_dense(), atol=1e-12)
            checked += 1
        assert checked == 40

    def test_full_contraction_to_scalar_matches_naive(self):
        rng = np.random.default_rng(3)
        i1 = Index([(0,), (1,)], [2, 3], flow=1)
        i2 = Index([(0,), (-1,)], [2, 2], flow=-1)
        a = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng)
        b = BlockSparseTensor.random([i2.dual(), i1.dual()], flux=(0,),
                                     rng=rng)
        ref = a.contract(b, axes=([0, 1], [1, 0]))
        out = contract_planned(a, b, axes=([0, 1], [1, 0]),
                               cache=PlanCache())
        assert out == pytest.approx(ref, abs=1e-12)

    def test_complex_and_mixed_dtype(self):
        rng = np.random.default_rng(5)
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [3, 2], flow=-1)
        a = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng,
                                     dtype=np.complex128)
        b = BlockSparseTensor.random([i2.dual(), i1.dual()], flux=(0,),
                                     rng=rng)
        out = contract_planned(a, b, axes=([1], [0]), cache=PlanCache())
        ref = a.contract(b, axes=([1], [0]))
        assert out.dtype == np.complex128
        assert np.allclose(out.to_dense(), ref.to_dense(), atol=1e-12)

    def test_plan_reused_for_equal_structure_different_values(self):
        rng = np.random.default_rng(9)
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        cache = PlanCache()
        a1 = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng)
        a2 = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng)
        b = BlockSparseTensor.random([i2.dual(), i1.dual()], flux=(0,),
                                     rng=rng)
        assert tensor_signature(a1) == tensor_signature(a2)
        contract_planned(a1, b, axes=([1], [0]), cache=cache)
        out = contract_planned(a2, b, axes=([1], [0]), cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert np.allclose(out.to_dense(),
                           a2.contract(b, axes=([1], [0])).to_dense(),
                           atol=1e-12)

    def test_invalid_axes_raise(self):
        rng = np.random.default_rng(1)
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        a = BlockSparseTensor.random([i1, i1.dual()], flux=(0,), rng=rng)
        with pytest.raises(ValueError):
            build_plan(a, a, axes=([1], [1]))  # equal flows cannot contract

    def test_plan_groups_cover_all_pairs(self):
        rng = np.random.default_rng(11)
        a, b, axes = _random_case(rng)
        plan = build_plan(a, b, axes)
        in_fused = sum(len(g.a_slots) for g in plan.fused_groups)
        in_batched = sum(len(g.entries) for g in plan.batch_groups)
        assert in_fused + in_batched == plan.npairs
        assert plan.out_nnz == sum(s.rows * s.cols for s in plan.out_specs)


class TestPlanCacheInDMRG:
    def test_davidson_matvecs_hit_cached_plans(self):
        lattice, sites, opsum, cs = heisenberg_chain_model(8)
        mpo = build_mpo(opsum, sites, compress=True)
        psi0 = MPS.product_state(sites, cs)
        backend = DirectBackend()
        config = DMRGConfig(sweeps=Sweeps.fixed(24, 8, cutoff=1e-10))
        res, _ = dmrg(mpo, psi0, config, backend=backend)
        assert res.plan_cache_hits > 0
        assert res.plan_cache_hit_rate > 0.5
        # once the block structure converges, sweeps run fully from cache
        assert res.sweep_records[-1].plan_misses == 0
        assert res.sweep_records[-1].plan_hit_rate == 1.0
        assert res.plan_cache_hit_rate_after_first_sweep > 0.8

    def test_planned_energy_matches_naive_path(self):
        lattice, sites, opsum, cs = heisenberg_chain_model(8)
        mpo = build_mpo(opsum, sites, compress=True)
        psi0 = MPS.product_state(sites, cs)
        config = DMRGConfig(sweeps=Sweeps.fixed(32, 6, cutoff=1e-10))
        res_naive, _ = dmrg(mpo, psi0, config,
                            backend=DirectBackend(use_planner=False))
        res_plan, _ = dmrg(mpo, psi0, config, backend=DirectBackend())
        assert res_plan.energy == pytest.approx(res_naive.energy, abs=1e-10)
        # the naive backend reports no plan statistics
        assert res_naive.plan_cache_hits == 0
        assert res_naive.plan_cache_misses == 0


# --------------------------------------------------------------------------- #
# satellite bugfix regressions
# --------------------------------------------------------------------------- #
class TestBugfixRegressions:
    def test_degenerate_svd_reports_dim1_bond(self):
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        empty = BlockSparseTensor([i1, i2], {}, flux=(0,))
        u, spec, vh, info = svd(empty, row_axes=[0])
        # the emitted bond really has dimension 1, and kept_dim must agree
        assert u.indices[-1].dim == 1
        assert vh.indices[0].dim == 1
        assert info.kept_dim == 1

    def test_add_casts_blocks_to_result_dtype(self):
        rng = np.random.default_rng(0)
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        a = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng)
        b = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng,
                                     dtype=np.complex128)
        out = a + b
        assert out.dtype == np.complex128
        assert all(blk.dtype == np.complex128 for blk in out.blocks.values())
        # blocks present only in `a` must be cast as well
        sparse_b = BlockSparseTensor([i1, i2],
                                     {next(iter(b.blocks)):
                                      next(iter(b.blocks.values()))},
                                     flux=(0,), dtype=np.complex128)
        out2 = a + sparse_b
        assert all(blk.dtype == np.complex128
                   for blk in out2.blocks.values())

    def test_mul_keeps_dtype_attribute_consistent_with_blocks(self):
        rng = np.random.default_rng(0)
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        a = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng,
                                     dtype=np.complex64)
        out = a * 2.0
        assert all(blk.dtype == out.dtype for blk in out.blocks.values())
        outc = a * (1.0 + 2.0j)
        assert outc.dtype.kind == "c"
        assert all(blk.dtype == outc.dtype for blk in outc.blocks.values())
        # the dtype must not depend on whether blocks happen to be stored
        empty = BlockSparseTensor.zeros([i1, i2], flux=(0,),
                                        dtype=np.complex64)
        assert (empty * 2.0).dtype == out.dtype

    def test_plan_cache_none_still_contracts_on_all_backends(self):
        """plan_cache=None disables memoization without breaking contract()."""
        from repro.backends import (ListBackend, SparseDenseBackend,
                                    SparseSparseBackend)
        from repro.ctf import SimWorld
        rng = np.random.default_rng(2)
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        a = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng)
        b = BlockSparseTensor.random([i2.dual(), i1.dual()], flux=(0,),
                                     rng=rng)
        ref = a.contract(b, axes=([1], [0]))
        for backend in (DirectBackend(use_planner=False),
                        ListBackend(SimWorld()),
                        SparseDenseBackend(SimWorld()),
                        SparseSparseBackend(SimWorld())):
            backend.plan_cache = None
            out = backend.contract(a, b, axes=([1], [0]))
            assert np.allclose(out.to_dense(), ref.to_dense(), atol=1e-12)

    def test_scalar_contract_with_no_pairs_keeps_result_dtype(self):
        ii = Index([(0,), (1,)], [1, 1], flow=1)
        a = BlockSparseTensor([ii], {(0,): np.ones(1, dtype=np.complex128)},
                              flux=(0,), dtype=np.complex128)
        b = BlockSparseTensor([ii.dual()],
                              {(1,): np.ones(1, dtype=np.complex128)},
                              flux=(-1,), dtype=np.complex128)
        out = a.contract(b, axes=([0], [0]))
        assert np.asarray(out).dtype == np.complex128
        assert out == 0
        planned = contract_planned(a, b, axes=([0], [0]), cache=PlanCache())
        assert np.asarray(planned).dtype == np.complex128
        assert planned == 0

    @pytest.mark.parametrize("dtype", [np.float32, np.float64,
                                       np.complex64, np.complex128])
    def test_randomize_like_respects_dtype(self, dtype):
        rng = np.random.default_rng(0)
        i1 = Index([(0,), (1,)], [2, 2], flow=1)
        i2 = Index([(0,), (1,)], [2, 2], flow=-1)
        x = BlockSparseTensor.random([i1, i2], flux=(0,), rng=rng,
                                     dtype=dtype)
        out = _randomize_like(x, rng)
        assert out.dtype == np.dtype(dtype)
        assert all(blk.dtype == np.dtype(dtype)
                   for blk in out.blocks.values())
        assert out.norm() > 0


class TestCliBenchSmoke:
    def test_bench_plan_cache_target(self, capsys):
        from repro.cli import main
        assert main(["bench", "--target", "plan-cache"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "speedup" in out
