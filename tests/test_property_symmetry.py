"""Property-based tests (hypothesis) for the symmetric tensor layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.symmetry import BlockSparseTensor, Index, svd
from repro.symmetry.charges import add_charges


@st.composite
def u1_index(draw, max_sectors=3, max_dim=3):
    """A random U(1) index."""
    nsec = draw(st.integers(1, max_sectors))
    charges = draw(st.lists(st.integers(-2, 2), min_size=nsec, max_size=nsec,
                            unique=True))
    dims = draw(st.lists(st.integers(1, max_dim), min_size=nsec, max_size=nsec))
    flow = draw(st.sampled_from([1, -1]))
    return Index([(c,) for c in charges], dims, flow=flow)


@st.composite
def tensor_and_partner(draw):
    """A rank-3 tensor and a rank-2 partner sharing a contractable index."""
    i1 = draw(u1_index())
    i2 = draw(u1_index())
    i3 = draw(u1_index())
    i4 = draw(u1_index())
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    a = BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)
    b = BlockSparseTensor.random([i3.dual(), i4], flux=(0,), rng=rng)
    return a, b


@settings(max_examples=40, deadline=None)
@given(tensor_and_partner())
def test_contraction_matches_dense(pair):
    """Block contraction always equals the dense tensordot."""
    a, b = pair
    c = a.contract(b, axes=([2], [0]))
    ref = np.tensordot(a.to_dense(), b.to_dense(), axes=([2], [0]))
    if isinstance(c, BlockSparseTensor):
        assert np.allclose(c.to_dense(), ref, atol=1e-10)
    else:
        assert np.allclose(np.asarray(c), ref, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(tensor_and_partner())
def test_contraction_conserves_charge(pair):
    """Every output block of a contraction satisfies charge conservation."""
    a, b = pair
    c = a.contract(b, axes=([2], [0]))
    if isinstance(c, BlockSparseTensor):
        assert c.flux == add_charges(a.flux, b.flux)
        for key in c.blocks:
            assert c.key_allowed(key)


@settings(max_examples=30, deadline=None)
@given(tensor_and_partner())
def test_svd_reconstructs_and_truncates_monotonically(pair):
    """Untruncated SVD reconstructs; truncation error grows as max_dim shrinks."""
    a, _ = pair
    if a.num_blocks == 0:
        return
    u, _, vh, info = svd(a, row_axes=[0, 1], absorb="left")
    rec = u.contract(vh, axes=([2], [0]))
    assert np.allclose(rec.to_dense(), a.to_dense(), atol=1e-8)
    errors = []
    for maxdim in (6, 3, 1):
        _, _, _, inf = svd(a, row_axes=[0, 1], max_dim=maxdim)
        errors.append(inf.truncation_error)
    assert errors == sorted(errors)


@settings(max_examples=40, deadline=None)
@given(u1_index(), st.integers(0, 2 ** 16))
def test_conj_is_involution(ix, seed):
    """conj(conj(T)) == T."""
    rng = np.random.default_rng(seed)
    t = BlockSparseTensor.random([ix, ix.dual()], flux=(0,), rng=rng)
    back = t.conj().conj()
    assert np.allclose(back.to_dense(), t.to_dense())
    assert back.flux == t.flux


@settings(max_examples=40, deadline=None)
@given(u1_index(), u1_index(), st.integers(0, 2 ** 16))
def test_norm_invariant_under_transpose(i1, i2, seed):
    """The Frobenius norm is invariant under mode permutation."""
    rng = np.random.default_rng(seed)
    t = BlockSparseTensor.random([i1, i2, i1.dual()], flux=(0,), rng=rng)
    assert np.isclose(t.norm(), t.transpose([2, 1, 0]).norm())


@settings(max_examples=40, deadline=None)
@given(u1_index(), st.integers(0, 2 ** 16))
def test_from_dense_roundtrip(ix, seed):
    """to_dense(from_dense(x)) == x for symmetric x."""
    rng = np.random.default_rng(seed)
    t = BlockSparseTensor.random([ix, ix.dual()], flux=(0,), rng=rng)
    dense = t.to_dense()
    back = BlockSparseTensor.from_dense(dense, t.indices, flux=t.flux)
    assert np.allclose(back.to_dense(), dense)
