"""Property-based tests (hypothesis) for the process-parallel executor.

Randomized charge sectors, block shapes and memory layouts, always judged
by exact equality against the serial numpy kernels: the process executor
is an execution seam, so there is no tolerance to tune — any deviation is
a layout or accumulation-order bug.  The executor runs with its dispatch
thresholds forced to zero so every example actually crosses the process
boundary, and the module teardown asserts the shared-memory arena kept no
segments alive.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ctf import shm
from repro.symmetry import BlockOps, BlockSparseTensor, Index
from repro.symmetry.procops import ProcessOps


@pytest.fixture(scope="module")
def procops():
    """One forced-dispatch executor shared by every example (pool reuse)."""
    ops = ProcessOps(max_workers=2, min_dispatch_flops=0.0, min_pin_bytes=0)
    yield ops
    before = set(ops._shm.segment_names())
    ops.shutdown()
    assert ops._shm.segment_names() == ()
    # shutdown unlinked everything this executor ever created
    assert not (before & set(shm.live_segment_names()))


@pytest.fixture(scope="module")
def serial():
    return BlockOps()


@st.composite
def gemm_operands(draw):
    """A GEMM pair with a randomized memory layout per operand."""
    m = draw(st.integers(1, 24))
    k = draw(st.integers(1, 24))
    n = draw(st.integers(1, 24))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)

    def materialize(shape, layout):
        rows, cols = shape
        if layout == "F":
            return rng.standard_normal((cols, rows)).T
        if layout == "strided":
            big = rng.standard_normal((2 * rows, 2 * cols))
            return big[::2, ::2]
        return rng.standard_normal((rows, cols))

    layouts = st.sampled_from(["C", "F", "strided"])
    a = materialize((m, k), draw(layouts))
    b = materialize((k, n), draw(layouts))
    return a, b


@settings(max_examples=40, deadline=None)
@given(gemm_operands())
def test_matmul_bit_identical(procops, serial, pair):
    a, b = pair
    np.testing.assert_array_equal(procops.matmul(a, b), serial.matmul(a, b))


@settings(max_examples=25, deadline=None)
@given(gemm_operands())
def test_matmul_out_bit_identical(procops, serial, pair):
    a, b = pair
    got = np.full((a.shape[0], b.shape[1]), np.nan)
    want = np.full((a.shape[0], b.shape[1]), np.nan)
    procops.matmul(a, b, out=got)
    serial.matmul(a, b, out=want)
    np.testing.assert_array_equal(got, want)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 30), st.integers(1, 30), st.integers(0, 2 ** 16))
def test_factorizations_bit_identical(procops, serial, m, n, seed):
    mat = np.random.default_rng(seed).standard_normal((m, n))
    for got, want in zip(procops.svd(mat), serial.svd(mat)):
        np.testing.assert_array_equal(got, want)
    for got, want in zip(procops.qr(mat), serial.qr(mat)):
        np.testing.assert_array_equal(got, want)


@st.composite
def u1_index(draw, max_sectors=3, max_dim=4):
    nsec = draw(st.integers(1, max_sectors))
    charges = draw(st.lists(st.integers(-2, 2), min_size=nsec,
                            max_size=nsec, unique=True))
    dims = draw(st.lists(st.integers(1, max_dim), min_size=nsec,
                         max_size=nsec))
    flow = draw(st.sampled_from([1, -1]))
    return Index([(c,) for c in charges], dims, flow=flow)


@st.composite
def contraction_pair(draw):
    """A rank-3 tensor and rank-2 partner over random charge sectors."""
    i1 = draw(u1_index())
    i2 = draw(u1_index())
    i3 = draw(u1_index())
    i4 = draw(u1_index())
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    a = BlockSparseTensor.random([i1, i2, i3], flux=(0,), rng=rng)
    b = BlockSparseTensor.random([i3.dual(), i4], flux=(0,), rng=rng)
    return a, b


@settings(max_examples=30, deadline=None)
@given(contraction_pair())
def test_planned_contraction_bit_identical(procops, serial, pair):
    """Random charge structure through the fused/batched engine: exact."""
    from repro.backends import DirectBackend

    a, b = pair
    got = DirectBackend(block_ops=procops).contract(a, b, axes=([2], [0]))
    want = DirectBackend(block_ops=serial).contract(a, b, axes=([2], [0]))
    if not isinstance(want, BlockSparseTensor):
        assert np.asarray(got) == np.asarray(want)
        return
    assert set(got.blocks) == set(want.blocks)
    for key, blk in want.blocks.items():
        np.testing.assert_array_equal(got.blocks[key], blk)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(1, 10), min_size=1, max_size=5),
       st.integers(1, 12), st.sampled_from(["C", "F"]),
       st.integers(0, 2 ** 16))
def test_panels_replicate_numpy_layout(procops, cols, rows, order, seed):
    """concat/stack panels carry numpy's exact strides, not just values."""
    rng = np.random.default_rng(seed)
    mats = []
    for c in cols:
        m = rng.standard_normal((rows, c))
        mats.append(np.asfortranarray(m) if order == "F" else m)
    got = procops.concat(mats, axis=1)
    want = np.concatenate(mats, axis=1)
    np.testing.assert_array_equal(got, want)
    assert got.strides == want.strides
    same = [np.asfortranarray(rng.standard_normal((rows, cols[0])))
            if order == "F" else rng.standard_normal((rows, cols[0]))
            for _ in range(3)]
    got = procops.stack(same)
    want = np.stack(same)
    np.testing.assert_array_equal(got, want)
    assert got.strides == want.strides


def test_scratch_recycling_never_leaks_segments():
    """A short-lived executor unlinks everything it created at shutdown."""
    ops = ProcessOps(max_workers=2, min_dispatch_flops=0.0, min_pin_bytes=0)
    rng = np.random.default_rng(0)
    for _ in range(5):
        a = ops.prepare(rng.standard_normal((16, 16)))
        b = ops.prepare(rng.standard_normal((16, 16)))
        ops.matmul(a, b)
        ops.svd(np.asarray(a))
    created = set(ops._shm.segment_names())
    assert created  # the run really did allocate shared panels
    ops.shutdown()
    assert ops._shm.segment_names() == ()
    assert not (created & set(shm.live_segment_names()))
