#!/usr/bin/env python
"""Quickstart: ground state of a Heisenberg chain with two-site DMRG.

Builds the Hamiltonian MPO with AutoMPO, runs DMRG from a Néel product state,
and cross-checks the energy against exact diagonalization — the minimal
end-to-end use of the public API.

Run:  python examples/quickstart.py [nsites]
"""

from __future__ import annotations

import sys

from repro.dmrg import DMRGConfig, Sweeps, dmrg
from repro.ed import ground_state_energy
from repro.models import heisenberg_chain_model
from repro.mps import MPS, build_mpo


def main(nsites: int = 12) -> None:
    # 1. model: nearest-neighbour Heisenberg chain, conserving 2*Sz
    lattice, sites, opsum, neel = heisenberg_chain_model(nsites, j1=1.0, j2=0.0)
    print(f"Heisenberg chain with {nsites} sites, "
          f"{len(opsum)} Hamiltonian terms")

    # 2. Hamiltonian as a (block-sparse) MPO via AutoMPO
    mpo = build_mpo(opsum, sites, compress=True)
    print(f"MPO bond dimension k = {mpo.max_bond_dimension()}")

    # 3. starting state: a Néel product state fixes the total charge (Sz = 0)
    psi0 = MPS.product_state(sites, neel)

    # 4. two-site DMRG with a ramped bond-dimension schedule
    config = DMRGConfig(sweeps=Sweeps.ramp(64, 8, cutoff=1e-10), verbose=False)
    result, psi = dmrg(mpo, psi0, config)
    print(f"DMRG energy   = {result.energy:.10f}   "
          f"(max bond dimension {psi.max_bond_dimension()})")

    # 5. validate against exact diagonalization (small systems only)
    if nsites <= 14:
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(neel))
        print(f"Exact energy  = {exact:.10f}")
        print(f"|difference|  = {abs(result.energy - exact):.2e}")

    # 6. measurements on the optimized state
    sz_profile = [round(complex(psi.expect_one_site("Sz", j)).real, 4)
                  for j in range(min(nsites, 8))]
    print(f"<Sz_j> (first sites): {sz_profile}")
    print(f"entanglement entropy at the center bond: "
          f"{psi.entanglement_entropy(nsites // 2 - 1):.4f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
