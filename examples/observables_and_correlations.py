#!/usr/bin/env python
"""Measuring physics on a converged DMRG state.

Runs two-site DMRG on a J1-J2 Heisenberg ladder (a narrow version of the
paper's spin benchmark), then extracts the quantities a physics study would
report: the magnetization profile, spin-spin correlation functions along the
chain, the entanglement-entropy profile, and the energy variance that
certifies convergence.

Run:  python examples/observables_and_correlations.py [lx] [ly]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.dmrg import (DMRGConfig, Sweeps, correlation, dmrg,
                        energy_and_variance, entanglement_profile,
                        expectation_profile, measure)
from repro.models import j1j2_cylinder_model
from repro.mps import MPS, build_mpo


def main(lx: int = 6, ly: int = 3) -> None:
    lattice, sites, opsum, neel = j1j2_cylinder_model(lx, ly, j1=1.0, j2=0.5)
    print(f"J1-J2 Heisenberg cylinder {lx}x{ly} "
          f"({lattice.nsites} sites, J2/J1 = 0.5)")

    mpo = build_mpo(opsum, sites, compress=True)
    psi0 = MPS.product_state(sites, neel)
    config = DMRGConfig(sweeps=Sweeps.ramp(96, 8, cutoff=1e-10))
    result, psi = dmrg(mpo, psi0, config)

    energy, variance = energy_and_variance(psi, mpo)
    print(f"\nground-state energy  : {energy:+.8f}  "
          f"({energy / lattice.nsites:+.8f} per site)")
    print(f"energy variance      : {variance:.2e}   (eigenstate certificate)")
    print(f"max bond dimension   : {psi.max_bond_dimension()}")

    # magnetization profile: should be ~0 on every site in the Sz = 0 sector
    sz = expectation_profile(psi, "Sz")
    print(f"\n<Sz> profile         : min {sz.min():+.4f}, max {sz.max():+.4f}, "
          f"sum {sz.sum():+.6f}")

    # spin-spin correlations from the central site along the cylinder axis
    center = lattice.nsites // 2
    print("\nspin-spin correlations from the central site (same row):")
    print("  separation   <S_i . S_j>")
    for dx in range(1, min(lx - lx // 2, 4)):
        j = center + dx * ly
        if j >= lattice.nsites:
            break
        ss = (correlation(psi, "Sz", center, "Sz", j)
              + 0.5 * correlation(psi, "S+", center, "S-", j)
              + 0.5 * correlation(psi, "S-", center, "S+", j))
        print(f"  {dx:10d}   {np.real(ss):+.6f}")

    # entanglement profile across every bond (peaks mid-cylinder)
    entropies = entanglement_profile(psi)
    peak = int(np.argmax(entropies))
    print(f"\nentanglement entropy : peak {entropies[peak]:.4f} at bond {peak}"
          f" (chain center = bond {lattice.nsites // 2 - 1})")

    # the one-call measurement report used by the CLI
    report = measure(psi, mpo, profile_ops=["Sz"])
    print("\nmeasurement report\n" + "-" * 18)
    print(report.summary())


if __name__ == "__main__":
    lx = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    ly = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(lx, ly)
