#!/usr/bin/env python
"""Excitation gaps from penalty-projected DMRG.

The physics questions behind the paper's two benchmark systems (spin-liquid
candidates in the J1-J2 model, chiral phases in the triangular Hubbard model)
are largely questions about *gaps* — so besides the ground state one needs the
first few excited states in a symmetry sector.  This example computes the two
lowest Sz = 0 states of a Heisenberg chain with the penalty method
(``find_lowest_states``) and compares the gap against exact diagonalization.

Run:  python examples/excited_states_gap.py [nsites]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.dmrg import energy_variance, find_lowest_states
from repro.ed import ground_state
from repro.models import heisenberg_chain_model
from repro.mps import MPS, build_mpo, overlap


def main(nsites: int = 10) -> None:
    lattice, sites, opsum, neel = heisenberg_chain_model(nsites)
    mpo = build_mpo(opsum, sites, compress=True)
    psi0 = MPS.product_state(sites, neel)
    print(f"Heisenberg chain, {nsites} sites, sector 2*Sz = 0")

    # two lowest states via DMRG with a penalty against the ground state
    states = find_lowest_states(mpo, psi0, nstates=2, maxdim=96, nsweeps=8,
                                weight=30.0)
    (e0, gs), (e1, ex) = states
    gap = e1 - e0
    print(f"\nDMRG  E0 = {e0:+.8f}")
    print(f"DMRG  E1 = {e1:+.8f}")
    print(f"DMRG  gap = {gap:.8f}")
    print(f"orthogonality |<0|1>| = {abs(overlap(gs, ex)):.2e}")
    print(f"variance of E0 state  = {energy_variance(gs, mpo):.2e}")
    print(f"variance of E1 state  = {energy_variance(ex, mpo):.2e}")

    # exact reference (small chains only)
    if nsites <= 12:
        charge = sites.total_charge(neel)
        evals, _ = ground_state(opsum, sites, charge=charge, k=2)
        evals = np.sort(evals)
        print(f"\nED    E0 = {evals[0]:+.8f}   (diff {abs(evals[0] - e0):.2e})")
        print(f"ED    E1 = {evals[1]:+.8f}   (diff {abs(evals[1] - e1):.2e})")
        print(f"ED    gap = {evals[1] - evals[0]:.8f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
