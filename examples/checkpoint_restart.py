#!/usr/bin/env python
"""Checkpointing and restarting a long DMRG run.

Production DMRG calculations run for days; this example shows the intended
fault-tolerance workflow: run part of the sweep schedule, write a checkpoint
(`.npz`, no external dependencies), then restart from disk and finish the
remaining sweeps.  The resumed run reaches the same energy as an
uninterrupted one.

Run:  python examples/checkpoint_restart.py [nsites]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.dmrg import (DMRGConfig, Sweeps, dmrg, load_checkpoint,
                        resume_sweep_schedule, save_checkpoint)
from repro.models import hubbard_chain_model
from repro.mps import MPS, build_mpo


def main(nsites: int = 8) -> None:
    lattice, sites, opsum, config_state = hubbard_chain_model(nsites, u=4.0)
    mpo = build_mpo(opsum, sites, compress=True)
    psi0 = MPS.product_state(sites, config_state)
    full_schedule = Sweeps.ramp(96, 10, cutoff=1e-12)
    print(f"Hubbard chain, {nsites} sites, U = 4; "
          f"{len(full_schedule)} sweeps planned")

    # ----- phase 1: run the first half of the schedule, then "crash" -------
    half = 5
    first = Sweeps(full_schedule.maxdims[:half], full_schedule.cutoffs[:half],
                   full_schedule.davidson_iterations[:half])
    result_a, psi_a = dmrg(mpo, psi0, DMRGConfig(sweeps=first))
    print(f"\nafter {half} sweeps : E = {result_a.energy:+.10f} "
          f"(m = {psi_a.max_bond_dimension()})")

    workdir = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))
    ckpt_path = workdir / "hubbard_checkpoint.npz"
    save_checkpoint(ckpt_path, psi_a, completed_sweeps=half,
                    energies=result_a.energies, metadata={"u": 4.0})
    print(f"checkpoint written : {ckpt_path} "
          f"({ckpt_path.stat().st_size / 1024:.1f} KiB)")

    # ----- phase 2: a new process restarts from the checkpoint -------------
    ckpt = load_checkpoint(ckpt_path, sites)
    remaining = resume_sweep_schedule(full_schedule, ckpt)
    print(f"\nrestarted from sweep {ckpt.completed_sweeps}; "
          f"{len(remaining)} sweeps remaining")
    result_b, psi_b = dmrg(mpo, ckpt.psi, DMRGConfig(sweeps=remaining))
    print(f"resumed final      : E = {result_b.energy:+.10f} "
          f"(m = {psi_b.max_bond_dimension()})")

    # ----- reference: uninterrupted run -------------------------------------
    result_ref, _ = dmrg(mpo, psi0, DMRGConfig(sweeps=full_schedule))
    print(f"uninterrupted      : E = {result_ref.energy:+.10f}")
    print(f"difference         : {abs(result_ref.energy - result_b.energy):.2e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
