#!/usr/bin/env python
"""The paper's spin workload: J1-J2 Heisenberg model on a square cylinder.

Runs real DMRG on a small cylinder with the distributed ``list`` backend (on a
simulated machine), reports energies per site, the quantum-number block
structure of the optimized MPS (the Fig. 2 quantities), and the modelled
per-category time breakdown (the Fig. 7 quantities).

Run:  python examples/j1j2_heisenberg_cylinder.py [Lx] [Ly] [maxdim]
"""

from __future__ import annotations

import sys

from repro.backends import make_backend
from repro.ctf import BLUE_WATERS, SimWorld
from repro.dmrg import DMRGConfig, Sweeps, dmrg
from repro.models import j1j2_cylinder_model
from repro.mps import MPS, build_mpo
from repro.perf import format_breakdown


def main(lx: int = 4, ly: int = 3, maxdim: int = 128) -> None:
    lattice, sites, opsum, config_state = j1j2_cylinder_model(lx, ly,
                                                              j1=1.0, j2=0.5)
    print(f"J1-J2 Heisenberg on a {lx}x{ly} cylinder "
          f"({lattice.nsites} sites, J2/J1 = 0.5)")
    mpo = build_mpo(opsum, sites, compress=True)
    print(f"MPO bond dimension k = {mpo.max_bond_dimension()}")

    # a simulated 8-node Blue Waters partition running the list algorithm
    world = SimWorld(nodes=8, procs_per_node=16, machine=BLUE_WATERS)
    backend = make_backend("list", world)

    psi0 = MPS.product_state(sites, config_state)
    schedule = Sweeps.ramp(maxdim, 8, cutoff=1e-10)
    result, psi = dmrg(mpo, psi0, DMRGConfig(sweeps=schedule), backend=backend)

    n = lattice.nsites
    print(f"ground-state energy          E   = {result.energy:.8f}")
    print(f"energy per site              E/N = {result.energy / n:.8f}")
    print(f"maximum MPS bond dimension   m   = {psi.max_bond_dimension()}")

    # block structure of the center tensor (the quantities of Fig. 2)
    center = n // 2
    tensor = psi.site_tensor(center)
    print(f"center tensor: {tensor.num_blocks} blocks, "
          f"largest block {max(b.size for b in tensor.blocks.values())} elements, "
          f"stored fraction {tensor.fill_fraction:.3f}")

    # modelled execution profile of the distributed run (Fig. 7 categories)
    print()
    print(format_breakdown(world.profiler.breakdown(),
                           title=f"modelled time breakdown on {world.machine.name} "
                                 f"({world.nodes} nodes)"))
    print(f"modelled time: {world.modelled_seconds():.2f} s, "
          f"performance rate: {world.profiler.gflops_rate():.2f} GFlop/s")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
