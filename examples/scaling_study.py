#!/usr/bin/env python
"""Reproduce the paper's scaling story end-to-end (modelled, no cluster needed).

Regenerates, for the 20x10 J1-J2 spin system on the Blue Waters machine model:
  * the headline runtime / rate speedups versus single-node ITensor (Fig. 10),
  * weak-scaling relative efficiency (Fig. 8a),
  * strong scaling at m = 8192 (Fig. 9),
  * the time breakdown at the largest configuration (Fig. 7a).

Run:  python examples/scaling_study.py [--small]
(--small uses an 8x4 cylinder so the script finishes in a few seconds.)
"""

from __future__ import annotations

import sys

from repro.ctf import BLUE_WATERS
from repro.perf import (format_breakdown, format_series, format_table,
                        get_system, headline_speedups, strong_scaling,
                        time_breakdown, weak_scaling)


def main(small: bool = False) -> None:
    system = get_system("spins", small=small)
    ms = [512, 1024, 2048] if small else [4096, 8192, 16384, 32768]
    nodes_for_m = dict(zip(ms, [8, 32, 64, 256][:len(ms)]))
    reference_m = ms[0]

    print(f"system: {system.name}, {system.nsites} sites, "
          f"MPO k = {system.mpo_bond_dimension}, machine: {BLUE_WATERS.name}")
    print()

    rows = headline_speedups(system, BLUE_WATERS, ms, nodes_for_m, reference_m)
    print(format_table(
        ["m", "nodes", "time speedup", "rate speedup", "rel cost", "GFlop/s"],
        [(r["m"], r["nodes"], round(r["time_speedup"], 1),
          round(r["rate_speedup"], 1), round(r["relative_cost"], 2),
          round(r["gflops"])) for r in rows],
        title="Speedup vs single-node ITensor (list algorithm)"))
    print()

    pairs = list(zip(nodes_for_m.values(), ms))
    print(format_series(weak_scaling(system, BLUE_WATERS, "list", pairs,
                                     reference_m),
                        "nodes", "relative efficiency"))
    print()

    speedup, efficiency = strong_scaling(system, BLUE_WATERS, "list",
                                         ms[min(1, len(ms) - 1)],
                                         [8, 16, 32, 64])
    print(format_series(speedup, "nodes", "strong-scaling speedup"))
    print()

    breakdown = time_breakdown(system, ms[-1], BLUE_WATERS,
                               nodes_for_m[ms[-1]], "list")
    print(format_breakdown(breakdown,
                           title=f"time breakdown at m = {ms[-1]}"))


if __name__ == "__main__":
    main(small="--small" in sys.argv)
