#!/usr/bin/env python
"""The paper's electron workload: the triangular-lattice Hubbard model.

Demonstrates the d = 4 fermionic site set with two conserved charges
(particle number and 2*Sz), Jordan-Wigner string handling in AutoMPO, MPO
compression (the paper obtains k = 26 for the 6x6 cylinder), and a comparison
of the ``list`` and ``sparse-sparse`` backends on the same problem.

Run:  python examples/triangular_hubbard_electrons.py [Lx] [Ly] [maxdim]
"""

from __future__ import annotations

import sys

from repro.backends import make_backend
from repro.ctf import STAMPEDE2, SimWorld
from repro.dmrg import DMRGConfig, Sweeps, dmrg
from repro.ed import ground_state_energy
from repro.models import triangular_hubbard_model
from repro.mps import MPS, build_mpo


def main(lx: int = 3, ly: int = 2, maxdim: int = 128) -> None:
    lattice, sites, opsum, config_state = triangular_hubbard_model(
        lx, ly, t=1.0, u=8.5)
    print(f"Triangular Hubbard model on a {lx}x{ly} XC cylinder "
          f"({lattice.nsites} sites, U/t = 8.5, half filling)")
    print(f"conserved charges: N = {sites.total_charge(config_state)[0]}, "
          f"2*Sz = {sites.total_charge(config_state)[1]}")

    mpo = build_mpo(opsum, sites, compress=True, cutoff=1e-13)
    print(f"compressed MPO bond dimension k = {mpo.max_bond_dimension()} "
          f"(paper: 26 for the 6x6 cylinder)")

    psi0 = MPS.product_state(sites, config_state)
    schedule = Sweeps.ramp(maxdim, 10, cutoff=1e-12, davidson_iterations=4)

    energies = {}
    for algorithm in ("list", "sparse-sparse"):
        world = SimWorld(nodes=4, procs_per_node=64, machine=STAMPEDE2)
        backend = make_backend(algorithm, world)
        result, psi = dmrg(mpo, psi0, DMRGConfig(sweeps=schedule),
                           backend=backend)
        energies[algorithm] = result.energy
        print(f"[{algorithm:13s}] E = {result.energy:.8f}  "
              f"m = {psi.max_bond_dimension():4d}  "
              f"modelled time = {world.modelled_seconds():8.3f} s  "
              f"supersteps = {world.profiler.supersteps:8.0f}")

    # both algorithms implement the same DMRG: identical energies
    spread = max(energies.values()) - min(energies.values())
    print(f"energy spread between algorithms: {spread:.2e}")

    # exact diagonalization check for small lattices
    if lattice.nsites <= 8:
        exact = ground_state_energy(opsum, sites,
                                    charge=sites.total_charge(config_state))
        best = min(energies.values())
        print(f"exact (Lanczos) energy: {exact:.8f}   "
              f"DMRG error: {abs(best - exact):.2e}")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
